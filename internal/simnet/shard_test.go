package simnet

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/topology"
)

// shardedProgs adapts explicit per-node programs plus a span table to the
// Sharded interface, so the orchestrator can be exercised without the
// exchange compiler (which has its own equivalence suite).
type shardedProgs struct {
	progs []Program
	spans []PhaseSpan
}

func (s *shardedProgs) NumNodes() int           { return len(s.progs) }
func (s *shardedProgs) NumOps(p int) int        { return len(s.progs[p]) }
func (s *shardedProgs) Op(p, i int) Op          { return s.progs[p][i] }
func (s *shardedProgs) PhaseSpans() []PhaseSpan { return s.spans }

// multiphaseSource builds a d=3 hypercube program of two XOR phases plus
// compute and shuffle rows: phase one exchanges across dimension 2
// (stride 4, span 2, four independent pairs), phase two across the
// {0,1} field (stride 1, span 4, two independent quads).
func multiphaseSource() *shardedProgs {
	const n = 8
	progs := make([]Program, n)
	for p := 0; p < n; p++ {
		progs[p] = Program{
			{Kind: OpBarrier},
			{Kind: OpExchange, Peer: p ^ 4, Bytes: 64},
			{Kind: OpCompute, Micros: 5},
			{Kind: OpShuffle, Bytes: 128},
			{Kind: OpBarrier},
			{Kind: OpExchange, Peer: p ^ 1, Bytes: 32},
			{Kind: OpExchange, Peer: p ^ 2, Bytes: 32},
			{Kind: OpExchange, Peer: p ^ 3, Bytes: 32},
		}
	}
	return &shardedProgs{
		progs: progs,
		spans: []PhaseSpan{
			{Rows: 4, Stride: 4, Span: 2},
			{Rows: 4, Stride: 1, Span: 4},
		},
	}
}

func mustRunSource(t *testing.T, net *Network, src Source) Result {
	t.Helper()
	res, err := net.RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireIdentical asserts two results agree bit-for-bit in every field
// except ReplayShards (which reports the mode that produced them).
func requireIdentical(t *testing.T, label string, serial, sharded Result) {
	t.Helper()
	serial.ReplayShards, sharded.ReplayShards = 0, 0
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("%s: sharded result differs from serial\nserial:  %+v\nsharded: %+v", label, serial, sharded)
	}
}

// The sharded replay of a link-disjoint multiphase program must be
// bit-identical to the serial replay — with and without jitter, across
// shard counts that divide the groups evenly and ones that do not.
func TestShardedReplayMatchesSerial(t *testing.T) {
	topo := topology.MustNew(3)
	for _, jitter := range []float64{0, 0.08} {
		src := multiphaseSource()
		serialNet := New(topo, model.Hypothetical())
		serialNet.SetJitter(jitter, 42)
		serial := mustRunSource(t, serialNet, src)
		if serial.ReplayShards != 1 {
			t.Fatalf("serial ReplayShards = %d, want 1", serial.ReplayShards)
		}
		for _, w := range []int{2, 3, 4, 7} {
			net := New(topo, model.Hypothetical())
			net.SetJitter(jitter, 42)
			net.SetReplayShards(w)
			res := mustRunSource(t, net, src)
			if res.ReplayShards < 2 {
				t.Fatalf("jitter=%v w=%d: sharded replay fell back (ReplayShards=%d)", jitter, w, res.ReplayShards)
			}
			requireIdentical(t, "sharded vs serial", serial, res)
		}
	}
}

// A span table whose peers escape their declared groups must force the
// affected phase onto one shard — and still produce the serial result.
func TestShardedCrossGroupPeerFallsBack(t *testing.T) {
	src := multiphaseSource()
	// Lie about phase two: claim it spans only dimension 0 (stride 1,
	// span 2) while its exchanges reach across dimensions 0–1.
	src.spans[1] = PhaseSpan{Rows: 4, Stride: 1, Span: 2}
	topo := topology.MustNew(3)
	serialNet := New(topo, model.Hypothetical())
	serial := mustRunSource(t, serialNet, src)
	net := New(topo, model.Hypothetical())
	net.SetReplayShards(4)
	res := mustRunSource(t, net, src)
	// Phase one still shards; the mis-declared phase runs single-shard.
	if res.ReplayShards < 2 {
		t.Fatalf("phase one should still shard, got ReplayShards=%d", res.ReplayShards)
	}
	requireIdentical(t, "cross-group fallback", serial, res)
}

// Structurally unusable span tables (wrong row totals, missing barriers,
// non-dividing blocks) must reject the sharded path entirely.
func TestShardedStructuralFallback(t *testing.T) {
	topo := topology.MustNew(3)
	serial := mustRunSource(t, New(topo, model.Hypothetical()), multiphaseSource())
	cases := map[string]func(*shardedProgs){
		"row sum mismatch":  func(s *shardedProgs) { s.spans[0].Rows = 3 },
		"zero span":         func(s *shardedProgs) { s.spans[1].Span = 0 },
		"non-dividing span": func(s *shardedProgs) { s.spans[1].Span = 3 },
		"no spans":          func(s *shardedProgs) { s.spans = nil },
		"barrier misplaced": func(s *shardedProgs) { s.spans[0].Rows = 5; s.spans[1].Rows = 3 },
	}
	for name, mutate := range cases {
		src := multiphaseSource()
		mutate(src)
		net := New(topo, model.Hypothetical())
		net.SetReplayShards(4)
		res := mustRunSource(t, net, src)
		if res.ReplayShards != 1 {
			t.Errorf("%s: ReplayShards = %d, want serial fallback", name, res.ReplayShards)
		}
		requireIdentical(t, name, serial, res)
	}
}

// Tracing records a global, completion-ordered timeline; the sharded
// path must decline while a trace is on.
func TestShardedDeclinesUnderTrace(t *testing.T) {
	topo := topology.MustNew(3)
	net := New(topo, model.Hypothetical())
	net.SetReplayShards(4)
	net.SetTrace(true)
	res := mustRunSource(t, net, multiphaseSource())
	if res.ReplayShards != 1 {
		t.Fatalf("ReplayShards = %d under trace, want 1", res.ReplayShards)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("trace produced no timeline")
	}
}

func TestSetReplayShardsClamps(t *testing.T) {
	net := New(topology.MustNew(2), model.Hypothetical())
	net.SetReplayShards(0)
	if net.shards != 1 {
		t.Fatalf("shards after SetReplayShards(0) = %d, want 1", net.shards)
	}
	net.SetReplayShards(1 << 20)
	if net.shards != maxReplayShards {
		t.Fatalf("shards after huge SetReplayShards = %d, want %d", net.shards, maxReplayShards)
	}
}

// The shard-safety audit satellite: one Network must serve concurrent
// RunSource calls — serial and sharded mixed — without data races (run
// under -race) and with every call returning the identical result.
func TestConcurrentRunSourceOneNetwork(t *testing.T) {
	topo := topology.MustNew(3)
	src := multiphaseSource()
	want := mustRunSource(t, New(topo, model.Hypothetical()), src)

	shardedNet := New(topo, model.Hypothetical())
	shardedNet.SetReplayShards(4)
	serialNet := New(topo, model.Hypothetical())

	const callers = 8
	results := make([]Result, 2*callers)
	errs := make([]error, 2*callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = shardedNet.RunSource(src)
		}(i)
		go func(i int) {
			defer wg.Done()
			results[callers+i], errs[callers+i] = serialNet.RunSource(src)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		requireIdentical(t, "concurrent caller", want, results[i])
	}
}
