package simnet

import (
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/model"
	"repro/internal/topology"
)

// Network is a simulated circuit-switched machine over any
// topology.Network — hypercube, torus or mesh. Routing, link contention
// and distances come from the topology; the hypercube keeps its
// bit-trick fast paths in the replay core.
type Network struct {
	topo       topology.Network
	hyper      *topology.Hypercube // non-nil when topo is the radix-2 fast path
	params     model.Params
	trace      bool
	budget     uint64
	jitterFrac float64
	jitterSeed int64
	faults     *compiledFaults // timed fault schedule (SetFaultPlan), nil when none
	shards     int             // SetReplayShards; ≤ 1 replays serially
}

// SetJitter enables deterministic pseudo-random perturbation of every
// transmission duration by up to ±frac (e.g. 0.05 = ±5%). The paper's
// Figures 4–6 distinguish measured (solid) from predicted (dashed)
// curves; jitter turns the simulator into the "measured" machine whose
// imperfect agreement with the model can be quantified. frac = 0 restores
// exact model behaviour.
//
// The noise source is never the global math/rand state: every node owns a
// private splitmix64 stream seeded from (this Network's seed, node id), so
// repeated Runs of the same programs give bit-identical results
// (go test -count=2), concurrent Runs on different Networks do not perturb
// each other, and two Networks with the same seed agree exactly. Per-node
// streams — rather than one per-Run stream consumed in global event
// order — are what let the sharded replay mode (SetReplayShards) stay
// bit-identical to serial replay: a node draws the same noise values
// regardless of how unrelated nodes' events interleave around it.
func (n *Network) SetJitter(frac float64, seed int64) {
	if frac < 0 {
		frac = 0
	}
	n.jitterFrac = frac
	n.jitterSeed = seed
}

// DefaultEventBudget is the watchdog limit on simulation events per Run;
// real workloads stay far below it, so hitting it indicates a livelock in
// the simulated programs. Runs whose programs are structurally larger
// (e.g. compiled complete-exchange plans beyond d = 12) raise the limit
// automatically to a bound derived from the total op count, so the
// watchdog can only trip on a genuine scheduling bug.
const DefaultEventBudget = 50_000_000

// SetEventBudget overrides the per-Run event watchdog (0 restores the
// default with its structural auto-scaling). An explicit budget is taken
// literally; tests use tiny values to exercise the exhaustion path.
func (n *Network) SetEventBudget(limit uint64) { n.budget = limit }

// SetTrace enables or disables timeline recording: when on, every node
// op's occupancy interval is appended to Result.Timeline.
func (n *Network) SetTrace(on bool) { n.trace = on }

// Interval is one node-op occupancy span in the timeline: the node was
// inside the op from Start to End (µs). For communication ops the span
// includes rendezvous and circuit waiting.
type Interval struct {
	Node  int
	Kind  OpKind
	Peer  int
	Bytes int
	Start float64
	End   float64
}

// New returns a network over the given topology with the given machine
// parameters. A fault-free topology.Degraded overlay keeps the
// hypercube bit-trick fast paths (it routes identically to its base by
// construction); a faulty overlay routes — and detours — through the
// overlay, and its slow wires stretch the circuits that cross them.
func New(t topology.Network, p model.Params) *Network {
	h, _ := topology.AsHypercube(t)
	return &Network{topo: t, hyper: h, params: p}
}

// Topo returns the underlying topology.
func (n *Network) Topo() topology.Network { return n.topo }

// Nodes returns the node count of the underlying topology.
func (n *Network) Nodes() int { return n.topo.Nodes() }

// Params returns the machine parameters.
func (n *Network) Params() model.Params { return n.params }

// Result reports the outcome of one simulated run.
type Result struct {
	// Makespan is the virtual time at which the last node finished, µs.
	Makespan float64
	// NodeFinish holds each node's completion time, µs.
	NodeFinish []float64
	// ContentionStall is the total time circuits spent waiting for busy
	// links, summed over all transmissions, µs.
	ContentionStall float64
	// Messages is the number of point-to-point transmissions (an
	// exchange counts as two).
	Messages int
	// BytesMoved is the total payload volume transmitted.
	BytesMoved int
	// DroppedForced counts FORCED messages that arrived before their
	// receive was posted (§7.3 calls this outcome "fatal"; we record it
	// and deliver anyway so the simulation can finish and report).
	DroppedForced int
	// Barriers is the number of global synchronizations executed.
	Barriers int
	// MaxEdgeQueue is the largest number of circuits that were ever
	// simultaneously holding-or-waiting on one directed link.
	MaxEdgeQueue int
	// Timeline holds per-op occupancy intervals when tracing is enabled
	// (Network.SetTrace), in completion order.
	Timeline []Interval
	// ReplayShards is the number of event-engine shards the run actually
	// used: 1 for a serial replay (including every sharded attempt that
	// fell back — cross-span detour routes, unconfined fault plans), the
	// maximum per-phase shard count otherwise. Sharded and serial replays
	// of the same source are bit-identical in every other field.
	ReplayShards int
}

// Source is the program set of one run addressed by (node, index). It is
// the compiled form of per-node programs: a trace compiler (package
// exchange's CompiledPlan) can replay a million-node plan without
// materializing 2^d op slices, because the replay core only ever asks for
// one op at a time. A plain []Program is adapted by Network.Run.
type Source interface {
	// NumNodes returns the number of node programs (must equal the
	// network's node count).
	NumNodes() int
	// NumOps returns the length of node p's program.
	NumOps(p int) int
	// Op returns the i-th op of node p's program, 0 ≤ i < NumOps(p).
	Op(p, i int) Op
}

// programsSource adapts explicit per-node programs to Source.
type programsSource []Program

func (s programsSource) NumNodes() int    { return len(s) }
func (s programsSource) NumOps(p int) int { return len(s[p]) }
func (s programsSource) Op(p, i int) Op   { return s[p][i] }

// runState is the mutable execution state of one Run. All hot tables are
// flat slices indexed by node or directed-link id — the interpreter
// allocates nothing per event once set up (inbox slots and edge hold
// rings grow amortized on first use).
type runState struct {
	net   *Network
	eng   *event.Engine
	src   Source
	topo  topology.Network
	n     int  // nodes
	d     int  // hypercube dimension (fast path only)
	hyper bool // radix-2 bit-trick routing active
	deg   int  // directed-link slots per node (== d on the hypercube)
	syncD int  // topology diameter, the global-sync weight (§7.3)

	// Fault state: faulty gates the per-circuit fault resolution out of
	// healthy runs entirely; degr carries the static per-wire slow
	// factors of a degraded overlay (nil when none).
	faulty bool
	degr   *topology.Degraded

	routeBuf []int // generic-path route scratch, reused across hops

	pc      []int32   // program counter per node
	lens    []int32   // program length per node (NumOps, cached)
	opStart []float64 // time the current op began occupying the node
	ready   []float64 // node-available time, µs
	done    []bool

	// Exchange rendezvous: node p parked inside OpExchange has
	// exPeer[p] = partner, with its payload size and ready time. The
	// second side to arrive finds its partner here and computes the
	// circuit timing for both (replaces the pend/pairSeq maps).
	exPeer  []int32
	exBytes []int
	exReady []float64

	// edges is the directed-link array, indexed by topology.LinkSlot
	// (u*d+i on the hypercube: node u's link across dimension i).
	edges []edgeState

	// Message channels, one per ordered (src,dst) pair actually used,
	// discovered on first contact. outIdx[src] lists src's channels; the
	// per-slot cursors replace the inbox/arrSeq/postSeq/waitSeq maps.
	chans  []msgChan
	outIdx [][]chanRef

	bar barrierState

	res    Result
	failed error

	// rngs holds one splitmix64 jitter stream per node (nil when jitter
	// is off). Per-node streams keep noise draws independent of the
	// global event interleaving, which the sharded replay mode requires
	// for bit-identity with serial replay.
	rngs []uint64
	// stall accumulates ContentionStall per owning node; the run sums it
	// in node-index order at the end. Event-order accumulation into one
	// float64 would make the total depend on how unrelated nodes'
	// reservations interleave — per-node accumulation makes the sharded
	// and serial totals bit-identical.
	stall []float64

	// windowed marks a shard interpreting one phase's row window under
	// runSharded: barriers are handled by the orchestrator between
	// windows, so encountering one mid-window is a verification bug.
	windowed bool

	// Long-lived bound handlers so event scheduling never allocates.
	stepH    event.ArgHandler
	deliverH event.ArgHandler
}

// edgeState is one directed link. Holds on a link never overlap (each
// reservation starts at or after the previous finish), so the outstanding
// reservations at any instant form an ascending queue of finish times,
// pruned in place at each new hold instead of scheduling a release event
// per link per hold. The queue lives in a small inline ring — schedules
// without deep contention allocate nothing — and spills to a slice only
// when more than edgeRing circuits stack up on one link.
type edgeState struct {
	busyUntil float64
	maxQueue  int32
	head, n   int32 // inline ring cursor and length
	ring      [edgeRing]float64
	spill     []float64 // overflow mode once non-nil
	spillHead int32
}

const edgeRing = 4

// hold records a reservation finishing at finish, placed at time now, and
// returns the number of circuits then holding-or-waiting on the link.
func (e *edgeState) hold(now, finish float64) int32 {
	if e.spill != nil {
		h := e.spillHead
		for int(h) < len(e.spill) && e.spill[h] <= now {
			h++
		}
		if int(h) == len(e.spill) {
			e.spill, h = e.spill[:0], 0
		} else if int(h) >= len(e.spill)-int(h) {
			// Compact once the dead prefix outgrows the live suffix, so
			// a continuously backlogged link stays O(live holds).
			n := copy(e.spill, e.spill[h:])
			e.spill, h = e.spill[:n], 0
		}
		e.spillHead = h
		e.spill = append(e.spill, finish)
		return int32(len(e.spill)) - h
	}
	for e.n > 0 && e.ring[e.head] <= now {
		e.head = (e.head + 1) % edgeRing
		e.n--
	}
	if e.n == edgeRing {
		e.spill = make([]float64, 0, 2*edgeRing)
		for i := int32(0); i < edgeRing; i++ {
			e.spill = append(e.spill, e.ring[(e.head+i)%edgeRing])
		}
		e.spill = append(e.spill, finish)
		e.head, e.n = 0, 0
		return edgeRing + 1
	}
	e.ring[(e.head+e.n)%edgeRing] = finish
	e.n++
	return e.n
}

// msgChan carries the messages of one ordered (src,dst) pair. The three
// cursors are the FIFO sequence counters for arrival, posting and waiting;
// sent indexes the slot a send writes its message type into.
type msgChan struct {
	src, dst int32
	arr      int32
	post     int32
	wait     int32
	sent     int32
	slots    []inboxSlot
}

type inboxSlot struct {
	arriveAt  float64
	waiterCPU float64 // time at which the waiter parked
	flags     uint8
}

const (
	slotArrived uint8 = 1 << iota
	slotPosted
	slotWaiting
	slotForced
)

type chanRef struct {
	dst int32
	ch  int32
}

type barrierState struct {
	arrived int
	maxTime float64
	waiters []int32
}

// Run executes one program per node (len(programs) must equal the node
// count) and returns the result. Programs must be mutually consistent:
// every exchange must have a matching exchange on the peer, and every
// send must eventually be received or the run reports a deadlock error.
func (n *Network) Run(programs []Program) (Result, error) {
	if len(programs) != n.topo.Nodes() {
		return Result{}, fmt.Errorf("simnet: %d programs for %d nodes",
			len(programs), n.topo.Nodes())
	}
	return n.runSource(programsSource(programs))
}

// RunSource executes a compiled program source — the allocation-free
// costing path used by exchange.Plan.Cost and collectives.Cost.
func (n *Network) RunSource(src Source) (Result, error) {
	if src.NumNodes() != n.topo.Nodes() {
		return Result{}, fmt.Errorf("simnet: source of %d programs for %d nodes",
			src.NumNodes(), n.topo.Nodes())
	}
	return n.runSource(src)
}

func (n *Network) runSource(src Source) (Result, error) {
	if n.shards > 1 && !n.trace {
		if sh, ok := src.(Sharded); ok {
			if res, ran, err := n.runSharded(sh, n.shards); ran {
				return res, err
			}
		}
	}
	nodes := n.topo.Nodes()
	d := 0
	if n.hyper != nil {
		d = n.hyper.Dim()
	}
	st := &runState{
		net:   n,
		eng:   event.New(),
		src:   src,
		topo:  n.topo,
		n:     nodes,
		d:     d,
		hyper: n.hyper != nil,
		deg:   n.topo.Degree(),
		syncD: n.topo.Diameter(),

		pc:      make([]int32, nodes),
		lens:    make([]int32, nodes),
		opStart: make([]float64, nodes),
		ready:   make([]float64, nodes),
		done:    make([]bool, nodes),
		exPeer:  make([]int32, nodes),
		exBytes: make([]int, nodes),
		exReady: make([]float64, nodes),
		edges:   make([]edgeState, nodes*n.topo.Degree()),
		outIdx:  make([][]chanRef, nodes),
		stall:   make([]float64, nodes),
		res:     Result{NodeFinish: make([]float64, nodes), ReplayShards: 1},
	}
	if n.jitterFrac != 0 {
		// Fresh per-Run streams seeded from the Network keep jitter
		// reproducible across repeated and concurrent Runs (see
		// SetJitter); never touch the global math/rand state here.
		st.rngs = seedJitterStreams(n.jitterSeed, nodes)
	}
	if dg, ok := n.topo.(*topology.Degraded); ok && dg.HasSlowLinks() {
		st.degr = dg
	}
	st.faulty = st.degr != nil || n.faults != nil
	for p := range st.exPeer {
		st.exPeer[p] = -1
	}
	st.stepH = func(_ event.Time, p int) { st.step(p) }
	st.deliverH = func(now event.Time, ch int) { st.deliverAt(ch, float64(now)) }

	totalOps := uint64(0)
	for p := 0; p < nodes; p++ {
		st.lens[p] = int32(src.NumOps(p))
		totalOps += uint64(st.lens[p])
	}
	// Seed: every node begins interpreting its program at time 0.
	for p := 0; p < nodes; p++ {
		st.eng.PostArg(0, st.stepH, p)
	}
	budget := n.budget
	if budget == 0 {
		budget = DefaultEventBudget
		// Every op consumes exactly one step event; add one final step
		// per node, one delivery per send, and the seed events. 2·ops +
		// 4·nodes dominates that, so the watchdog never trips on a
		// well-formed program of any size.
		if structural := 2*totalOps + 4*uint64(nodes); structural > budget {
			budget = structural
		}
	}
	if !st.eng.RunLimit(budget) {
		return st.res, st.budgetError(budget)
	}
	if st.failed != nil {
		return st.res, st.failed
	}
	for p, d := range st.done {
		if !d {
			return st.res, fmt.Errorf("simnet: node %d blocked at op %d (%s): deadlock",
				p, st.pc[p], st.opName(p))
		}
	}
	for i := range st.edges {
		if q := int(st.edges[i].maxQueue); q > st.res.MaxEdgeQueue {
			st.res.MaxEdgeQueue = q
		}
	}
	// Per-node stall sums collapse to the reported total in node-index
	// order — the same order the sharded merge uses, so both modes add
	// the same floats in the same sequence.
	for p := 0; p < nodes; p++ {
		st.res.ContentionStall += st.stall[p]
	}
	return st.res, nil
}

// budgetError reports event-budget exhaustion with enough detail to act
// on: how many events ran, and where each unfinished node is stuck (its
// program counter and current op), mirroring the deadlock error path.
func (st *runState) budgetError(budget uint64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "simnet: event budget (%d) exhausted after %d events (livelock?)",
		budget, st.eng.Steps())
	const maxListed = 8
	listed, unfinished := 0, 0
	for p := 0; p < st.n; p++ {
		if st.done[p] {
			continue
		}
		unfinished++
		if listed < maxListed {
			if listed == 0 {
				b.WriteString("; unfinished:")
			} else {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " node %d at op %d/%d (%s)",
				p, st.pc[p], st.src.NumOps(p), st.opName(p))
			listed++
		}
	}
	if unfinished > listed {
		fmt.Fprintf(&b, " and %d more", unfinished-listed)
	}
	return fmt.Errorf("%s", b.String())
}

func (st *runState) opName(p int) string {
	if int(st.pc[p]) < st.src.NumOps(p) {
		op := st.src.Op(p, int(st.pc[p]))
		switch op.Kind {
		case OpExchange, OpSend, OpPostRecv, OpWaitRecv, OpRecv:
			return fmt.Sprintf("%s peer %d", op.Kind, op.Peer)
		}
		return op.Kind.String()
	}
	return "end"
}

func (st *runState) fail(err error) {
	if st.failed == nil {
		st.failed = err
	}
}

// checkPeer validates a receive op's peer, failing the run (not
// panicking) on a node outside the cube.
func (st *runState) checkPeer(p int, op Op) bool {
	if op.Peer < 0 || op.Peer >= st.n {
		st.fail(fmt.Errorf("simnet: node %d: %s from nonexistent node %d", p, op.Kind, op.Peer))
		return false
	}
	return true
}

// step interprets the current op of node p. Called whenever node p becomes
// runnable (at its ready time).
func (st *runState) step(p int) {
	if st.failed != nil || st.done[p] {
		return
	}
	if st.pc[p] >= st.lens[p] {
		st.done[p] = true
		st.res.NodeFinish[p] = st.ready[p]
		if st.ready[p] > st.res.Makespan {
			st.res.Makespan = st.ready[p]
		}
		return
	}
	op := st.src.Op(p, int(st.pc[p]))
	st.opStart[p] = st.ready[p]
	switch op.Kind {
	case OpCompute:
		if op.Micros < 0 {
			st.fail(fmt.Errorf("simnet: node %d: negative compute time", p))
			return
		}
		st.advance(p, st.ready[p]+op.Micros)
	case OpShuffle:
		st.advance(p, st.ready[p]+st.net.params.Rho*float64(op.Bytes))
	case OpBarrier:
		st.enterBarrier(p)
	case OpExchange:
		st.enterExchange(p, op)
	case OpSend:
		st.doSend(p, op)
	case OpPostRecv:
		if !st.checkPeer(p, op) {
			return
		}
		st.doPostRecv(p, op.Peer)
		st.advance(p, st.ready[p])
	case OpRecv:
		if !st.checkPeer(p, op) {
			return
		}
		st.doPostRecv(p, op.Peer)
		st.doWaitRecv(p, op.Peer)
	case OpWaitRecv:
		if !st.checkPeer(p, op) {
			return
		}
		st.doWaitRecv(p, op.Peer)
	default:
		st.fail(fmt.Errorf("simnet: node %d: unknown op kind %v", p, op.Kind))
	}
}

// advance completes node p's current op at time t and schedules the next.
func (st *runState) advance(p int, t float64) {
	if st.net.trace && st.pc[p] < st.lens[p] {
		op := st.src.Op(p, int(st.pc[p]))
		st.res.Timeline = append(st.res.Timeline, Interval{
			Node:  p,
			Kind:  op.Kind,
			Peer:  op.Peer,
			Bytes: op.Bytes,
			Start: st.opStart[p],
			End:   t,
		})
	}
	st.ready[p] = t
	st.pc[p]++
	st.eng.PostArg(event.Time(t), st.stepH, p)
}

// park leaves node p blocked inside its current op; a later event will
// resume it via advance.
func (st *runState) park() {}
