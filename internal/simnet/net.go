package simnet

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/model"
	"repro/internal/topology"
)

// Network is a simulated circuit-switched hypercube.
type Network struct {
	cube       *topology.Hypercube
	params     model.Params
	trace      bool
	budget     uint64
	jitterFrac float64
	jitterSeed int64
}

// SetJitter enables deterministic pseudo-random perturbation of every
// transmission duration by up to ±frac (e.g. 0.05 = ±5%). The paper's
// Figures 4–6 distinguish measured (solid) from predicted (dashed)
// curves; jitter turns the simulator into the "measured" machine whose
// imperfect agreement with the model can be quantified. frac = 0 restores
// exact model behaviour.
//
// The noise source is never the global math/rand state: each Run
// constructs its own rand.Rand from this Network's seed, so repeated Runs
// of the same programs give bit-identical results (go test -count=2),
// concurrent Runs on different Networks do not perturb each other, and
// two Networks with the same seed agree exactly.
func (n *Network) SetJitter(frac float64, seed int64) {
	if frac < 0 {
		frac = 0
	}
	n.jitterFrac = frac
	n.jitterSeed = seed
}

// DefaultEventBudget is the watchdog limit on simulation events per Run;
// real workloads stay far below it, so hitting it indicates a livelock in
// the simulated programs.
const DefaultEventBudget = 50_000_000

// SetEventBudget overrides the per-Run event watchdog (0 restores the
// default). Exists mainly so tests can exercise the livelock path.
func (n *Network) SetEventBudget(limit uint64) { n.budget = limit }

// SetTrace enables or disables timeline recording: when on, every node
// op's occupancy interval is appended to Result.Timeline.
func (n *Network) SetTrace(on bool) { n.trace = on }

// Interval is one node-op occupancy span in the timeline: the node was
// inside the op from Start to End (µs). For communication ops the span
// includes rendezvous and circuit waiting.
type Interval struct {
	Node  int
	Kind  OpKind
	Peer  int
	Bytes int
	Start float64
	End   float64
}

// New returns a network over the given hypercube with the given machine
// parameters.
func New(h *topology.Hypercube, p model.Params) *Network {
	return &Network{cube: h, params: p}
}

// Cube returns the underlying hypercube.
func (n *Network) Cube() *topology.Hypercube { return n.cube }

// Params returns the machine parameters.
func (n *Network) Params() model.Params { return n.params }

// Result reports the outcome of one simulated run.
type Result struct {
	// Makespan is the virtual time at which the last node finished, µs.
	Makespan float64
	// NodeFinish holds each node's completion time, µs.
	NodeFinish []float64
	// ContentionStall is the total time circuits spent waiting for busy
	// links, summed over all transmissions, µs.
	ContentionStall float64
	// Messages is the number of point-to-point transmissions (an
	// exchange counts as two).
	Messages int
	// BytesMoved is the total payload volume transmitted.
	BytesMoved int
	// DroppedForced counts FORCED messages that arrived before their
	// receive was posted (§7.3 calls this outcome "fatal"; we record it
	// and deliver anyway so the simulation can finish and report).
	DroppedForced int
	// Barriers is the number of global synchronizations executed.
	Barriers int
	// MaxEdgeQueue is the largest number of circuits that were ever
	// simultaneously holding-or-waiting on one directed link.
	MaxEdgeQueue int
	// Timeline holds per-op occupancy intervals when tracing is enabled
	// (Network.SetTrace), in completion order.
	Timeline []Interval
}

// runState is the mutable execution state of one Run.
type runState struct {
	net     *Network
	eng     *event.Engine
	progs   []Program
	pc      []int     // program counter per node
	opStart []float64 // time the current op began occupying the node
	ready   []float64 // node-available time, µs
	done    []bool
	edges   map[topology.Edge]*edgeState
	pend    map[pairKey]*pendingExchange
	inbox   map[msgKey]*inboxEntry
	bar     *barrierState
	res     Result
	failed  error
	rng     *rand.Rand

	// FIFO sequence counters for rendezvous and message matching.
	pairSeq map[pairID]int
	arrSeq  map[pairID]int
	postSeq map[pairID]int
	waitSeq map[pairID]int
}

type edgeState struct {
	busyUntil float64
	queue     int // circuits currently holding or waiting
	maxQueue  int
}

// pairID names an ordered or unordered node pair, depending on use.
type pairID struct{ a, b int }

// pairKey identifies an exchange rendezvous between two nodes; seq
// disambiguates repeated exchanges between the same pair.
type pairKey struct {
	lo, hi int
	seq    int
}

type pendingExchange struct {
	firstNode  int
	firstReady float64
	bytes      int
}

// msgKey identifies the k-th message from src to dst.
type msgKey struct {
	src, dst int
	seq      int
}

type inboxEntry struct {
	arrived   bool
	arriveAt  float64
	posted    bool
	waiting   bool
	waiterCPU float64 // time at which the waiter parked
}

type barrierState struct {
	arrived int
	maxTime float64
	waiters []int
}

// Run executes one program per node (len(programs) must equal the node
// count) and returns the result. Programs must be mutually consistent:
// every exchange must have a matching exchange on the peer, and every
// send must eventually be received or the run reports a deadlock error.
func (n *Network) Run(programs []Program) (Result, error) {
	if len(programs) != n.cube.Nodes() {
		return Result{}, fmt.Errorf("simnet: %d programs for %d nodes",
			len(programs), n.cube.Nodes())
	}
	st := &runState{
		net:   n,
		eng:   event.New(),
		progs: programs,
		pc:    make([]int, len(programs)),

		opStart: make([]float64, len(programs)),
		ready:   make([]float64, len(programs)),
		done:    make([]bool, len(programs)),
		edges:   make(map[topology.Edge]*edgeState),
		pend:    make(map[pairKey]*pendingExchange),
		inbox:   make(map[msgKey]*inboxEntry),
		res:     Result{NodeFinish: make([]float64, len(programs))},

		// A fresh per-Run source seeded from the Network keeps jitter
		// reproducible across repeated and concurrent Runs (see
		// SetJitter); never touch the global math/rand state here.
		rng: rand.New(rand.NewSource(n.jitterSeed)),

		pairSeq: make(map[pairID]int),
		arrSeq:  make(map[pairID]int),
		postSeq: make(map[pairID]int),
		waitSeq: make(map[pairID]int),
	}
	// Seed: every node begins interpreting its program at time 0.
	for p := range programs {
		p := p
		st.eng.At(0, func(event.Time) { st.step(p) })
	}
	budget := n.budget
	if budget == 0 {
		budget = DefaultEventBudget
	}
	if !st.eng.RunLimit(budget) {
		return st.res, fmt.Errorf("simnet: event budget exhausted (livelock?)")
	}
	if st.failed != nil {
		return st.res, st.failed
	}
	for p, d := range st.done {
		if !d {
			return st.res, fmt.Errorf("simnet: node %d blocked at op %d (%s): deadlock",
				p, st.pc[p], st.opName(p))
		}
	}
	for _, e := range st.edges {
		if e.maxQueue > st.res.MaxEdgeQueue {
			st.res.MaxEdgeQueue = e.maxQueue
		}
	}
	return st.res, nil
}

func (st *runState) opName(p int) string {
	if st.pc[p] < len(st.progs[p]) {
		return st.progs[p][st.pc[p]].Kind.String()
	}
	return "end"
}

func (st *runState) fail(err error) {
	if st.failed == nil {
		st.failed = err
	}
}

// step interprets the current op of node p. Called whenever node p becomes
// runnable (at its ready time).
func (st *runState) step(p int) {
	if st.failed != nil || st.done[p] {
		return
	}
	prog := st.progs[p]
	if st.pc[p] >= len(prog) {
		st.done[p] = true
		st.res.NodeFinish[p] = st.ready[p]
		if st.ready[p] > st.res.Makespan {
			st.res.Makespan = st.ready[p]
		}
		return
	}
	op := prog[st.pc[p]]
	st.opStart[p] = st.ready[p]
	switch op.Kind {
	case OpCompute:
		if op.Micros < 0 {
			st.fail(fmt.Errorf("simnet: node %d: negative compute time", p))
			return
		}
		st.advance(p, st.ready[p]+op.Micros)
	case OpShuffle:
		st.advance(p, st.ready[p]+st.net.params.Rho*float64(op.Bytes))
	case OpBarrier:
		st.enterBarrier(p)
	case OpExchange:
		st.enterExchange(p, op)
	case OpSend:
		st.doSend(p, op)
	case OpPostRecv:
		st.doPostRecv(p, op.Peer)
		st.advance(p, st.ready[p])
	case OpRecv:
		st.doPostRecv(p, op.Peer)
		st.doWaitRecv(p, op.Peer)
	case OpWaitRecv:
		st.doWaitRecv(p, op.Peer)
	default:
		st.fail(fmt.Errorf("simnet: node %d: unknown op kind %v", p, op.Kind))
	}
}

// advance completes node p's current op at time t and schedules the next.
func (st *runState) advance(p int, t float64) {
	if st.net.trace && st.pc[p] < len(st.progs[p]) {
		op := st.progs[p][st.pc[p]]
		st.res.Timeline = append(st.res.Timeline, Interval{
			Node:  p,
			Kind:  op.Kind,
			Peer:  op.Peer,
			Bytes: op.Bytes,
			Start: st.opStart[p],
			End:   t,
		})
	}
	st.ready[p] = t
	st.pc[p]++
	st.eng.At(event.Time(t), func(event.Time) { st.step(p) })
}

// park leaves node p blocked inside its current op; a later event will
// resume it via advance.
func (st *runState) park() {}
