package simnet

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/topology"
)

// A statically slow wire (Degraded overlay) stretches exactly the
// exchanges that cross it, by exactly the factor.
func TestStaticSlowLinkStretchesExchange(t *testing.T) {
	p := model.IPSC860()
	base := topology.MustParseSpec("torus-4x4")
	const factor = 3.0
	d, err := topology.Overlay(base, topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: factor}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := New(d, p)
	m := 100
	healthy := p.EffLambda() + p.Tau*float64(m) + p.EffDelta()*1

	progs := emptyPrograms(16)
	progs[0] = Program{Exchange(1, m)} // crosses the slow wire
	progs[1] = Program{Exchange(0, m)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if want := factor * healthy; !almost(res.Makespan, want, 1e-9) {
		t.Errorf("slow-wire exchange makespan = %v, want %v", res.Makespan, want)
	}

	progs = emptyPrograms(16)
	progs[2] = Program{Exchange(3, m)} // far from the slow wire
	progs[3] = Program{Exchange(2, m)}
	res, err = n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, healthy, 1e-9) {
		t.Errorf("healthy-wire exchange makespan = %v, want %v", res.Makespan, healthy)
	}
}

// A timed slow fault activates only for circuits acquired at or after
// At, and composes multiplicatively with a static slow factor.
func TestFaultPlanSlowComposesWithStatic(t *testing.T) {
	p := model.IPSC860()
	base := topology.MustParseSpec("torus-4x4")
	d, err := topology.Overlay(base, topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := New(d, p)
	m := 100
	healthy := p.EffLambda() + p.Tau*float64(m) + p.EffDelta()*1
	// Activates after the first (static-2×) exchange starts but before
	// the second is acquired at t = 2·healthy.
	if err := n.SetFaultPlan(FaultPlan{Links: []LinkFault{
		{A: 0, B: 1, At: healthy, Factor: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	// Two back-to-back exchanges over the wire: the first starts at 0
	// (static 2× only), the second starts at 2·healthy ≥ At (2×·3×).
	progs := emptyPrograms(16)
	progs[0] = Program{Exchange(1, m), Exchange(1, m)}
	progs[1] = Program{Exchange(0, m), Exchange(0, m)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*healthy + 6*healthy; !almost(res.Makespan, want, 1e-9) {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// A wire going down at time T fails — loudly, with ErrLinkDown — any
// circuit acquired at or after T, while runs that finish before T are
// untouched.
func TestFaultPlanLinkDownFailsLoudly(t *testing.T) {
	p := model.IPSC860()
	n := New(topology.MustNew(3), p)
	m := 100
	healthy := p.EffLambda() + p.Tau*float64(m) + p.EffDelta()*1
	// The wire dies mid-plan: after the first exchange is acquired at
	// t = 0, before the second is acquired at t = healthy.
	if err := n.SetFaultPlan(FaultPlan{Links: []LinkFault{
		{A: 0, B: 1, At: 0.5 * healthy, Factor: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	progs := emptyPrograms(8)
	progs[0] = Program{Exchange(1, m)}
	progs[1] = Program{Exchange(0, m)}
	if _, err := n.Run(progs); err != nil {
		t.Fatalf("exchange before the fault must survive: %v", err)
	}
	progs[0] = Program{Exchange(1, m), Exchange(1, m)}
	progs[1] = Program{Exchange(0, m), Exchange(0, m)}
	if _, err := n.Run(progs); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("exchange across dead wire: %v, want ErrLinkDown", err)
	}

	// Sends hit the same wall.
	if err := n.SetFaultPlan(FaultPlan{Links: []LinkFault{{A: 0, B: 1, At: 0, Factor: 0}}}); err != nil {
		t.Fatal(err)
	}
	progs = emptyPrograms(8)
	progs[0] = Program{Send(1, m, Unforced)}
	progs[1] = Program{Recv(0)}
	if _, err := n.Run(progs); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send across dead wire: %v, want ErrLinkDown", err)
	}
	// Clearing the plan restores the healthy fabric.
	if err := n.SetFaultPlan(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(progs); err != nil {
		t.Fatalf("cleared fault plan must run clean: %v", err)
	}
}

// Fault adjustments compose with jitter deterministically: two runs with
// the same seed and fault plan agree bit-for-bit.
func TestFaultsComposeWithJitterDeterministically(t *testing.T) {
	p := model.IPSC860()
	base := topology.MustParseSpec("torus-4x4")
	d, err := topology.Overlay(base, topology.FaultSet{
		SlowLinks: []topology.SlowLink{{Link: topology.Link{A: 0, B: 1}, Factor: 2.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (Result, error) {
		n := New(d, p)
		n.SetJitter(0.05, 42)
		if err := n.SetFaultPlan(FaultPlan{Links: []LinkFault{{A: 4, B: 5, At: 10, Factor: 2}}}); err != nil {
			t.Fatal(err)
		}
		progs := emptyPrograms(16)
		for _, pair := range [][2]int{{0, 1}, {4, 5}, {8, 9}} {
			progs[pair[0]] = Program{Exchange(pair[1], 64), Exchange(pair[1], 64)}
			progs[pair[1]] = Program{Exchange(pair[0], 64), Exchange(pair[0], 64)}
		}
		return n.Run(progs)
	}
	r1, err1 := mk()
	r2, err2 := mk()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Makespan != r2.Makespan || r1.ContentionStall != r2.ContentionStall {
		t.Fatalf("jittered faulty runs diverge: %v vs %v", r1.Makespan, r2.Makespan)
	}
	// And the jittered slow exchange is genuinely ≠ the unjittered one.
	n := New(d, p)
	if err := n.SetFaultPlan(FaultPlan{Links: []LinkFault{{A: 4, B: 5, At: 10, Factor: 2}}}); err != nil {
		t.Fatal(err)
	}
	progs := emptyPrograms(16)
	progs[0] = Program{Exchange(1, 64)}
	progs[1] = Program{Exchange(0, 64)}
	r3, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.5 * (p.EffLambda() + p.Tau*64 + p.EffDelta()*1)
	if !almost(r3.Makespan, want, 1e-9) {
		t.Errorf("unjittered slow exchange = %v, want %v", r3.Makespan, want)
	}
}

// A faulty Degraded overlay with a dead wire detours circuits around it:
// the replay core never touches the dead wire's slots and the exchange
// still completes (at the longer detour distance).
func TestDegradedDeadWireDetoursInReplay(t *testing.T) {
	p := model.IPSC860()
	base := topology.MustParseSpec("torus-4x4")
	d, err := topology.Overlay(base, topology.FaultSet{
		DeadLinks: []topology.Link{{A: 0, B: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := New(d, p)
	m := 100
	progs := emptyPrograms(16)
	progs[0] = Program{Exchange(1, m)}
	progs[1] = Program{Exchange(0, m)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	h := d.Distance(0, 1) // detour length, > 1
	if h <= 1 {
		t.Fatalf("detour distance = %d, want > 1", h)
	}
	want := p.EffLambda() + p.Tau*float64(m) + p.EffDelta()*float64(h)
	if !almost(res.Makespan, want, 1e-9) {
		t.Errorf("detoured exchange makespan = %v, want %v", res.Makespan, want)
	}
}

func TestSetFaultPlanValidation(t *testing.T) {
	n := New(topology.MustNew(3), model.IPSC860())
	for _, bad := range []LinkFault{
		{A: 0, B: 3, At: 0, Factor: 0},   // not adjacent
		{A: 0, B: 99, At: 0, Factor: 0},  // out of range
		{A: 0, B: 1, At: -1, Factor: 0},  // negative time
		{A: 0, B: 1, At: 0, Factor: 0.5}, // factor ≤ 1
	} {
		if err := n.SetFaultPlan(FaultPlan{Links: []LinkFault{bad}}); err == nil {
			t.Errorf("SetFaultPlan accepted %+v", bad)
		}
	}
}
