package simnet

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/topology"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mkNet(d int, p model.Params) *Network {
	return New(topology.MustNew(d), p)
}

func emptyPrograms(n int) []Program {
	return make([]Program, n)
}

func TestRunWrongProgramCount(t *testing.T) {
	n := mkNet(2, model.IPSC860())
	if _, err := n.Run(make([]Program, 3)); err == nil {
		t.Error("wrong program count must fail")
	}
}

func TestEmptyProgramsFinishAtZero(t *testing.T) {
	n := mkNet(3, model.IPSC860())
	res, err := n.Run(emptyPrograms(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.Messages != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

// A single pairwise exchange with sync must cost exactly
// λ0 + δh + λ + τm + δh = λ_eff + τm + δ_eff·h (§7.4).
func TestExchangeTimingWithSync(t *testing.T) {
	p := model.IPSC860()
	n := mkNet(3, p)
	progs := emptyPrograms(8)
	m := 100
	progs[0] = Program{Exchange(7, m)} // distance 3
	progs[7] = Program{Exchange(0, m)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	want := p.EffLambda() + p.Tau*float64(m) + p.EffDelta()*3
	if !almost(res.Makespan, want, 1e-9) {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Messages != 2 || res.BytesMoved != 2*m {
		t.Errorf("stats: %+v", res)
	}
}

// Without pairwise sync the two transfers serialize: 2(λ + τm + δh).
func TestExchangeTimingWithoutSync(t *testing.T) {
	p := model.IPSC860NoSync()
	n := mkNet(3, p)
	progs := emptyPrograms(8)
	m := 100
	progs[1] = Program{Exchange(3, m)} // distance 1
	progs[3] = Program{Exchange(1, m)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (p.Lambda + p.Tau*float64(m) + p.Delta*1)
	if !almost(res.Makespan, want, 1e-9) {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// Pairwise sync is always worth it on iPSC-860 parameters (§7.2): the
// synchronized exchange must be faster than the serialized one.
func TestSyncAblation(t *testing.T) {
	for _, m := range []int{0, 10, 100, 1000} {
		run := func(p model.Params) float64 {
			n := mkNet(2, p)
			progs := emptyPrograms(4)
			progs[0] = Program{Exchange(1, m)}
			progs[1] = Program{Exchange(0, m)}
			res, err := n.Run(progs)
			if err != nil {
				t.Fatal(err)
			}
			return res.Makespan
		}
		sync := run(model.IPSC860())
		nosync := run(model.IPSC860NoSync())
		if sync >= nosync {
			t.Errorf("m=%d: synced %v must beat unsynced %v", m, sync, nosync)
		}
	}
}

func TestExchangeSelfIsNoop(t *testing.T) {
	n := mkNet(2, model.IPSC860())
	progs := emptyPrograms(4)
	progs[2] = Program{Exchange(2, 50), Compute(7)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 7, 1e-9) {
		t.Errorf("makespan = %v, want 7", res.Makespan)
	}
	if res.Messages != 0 {
		t.Error("self exchange must move no messages")
	}
}

func TestExchangeMismatchedSizes(t *testing.T) {
	n := mkNet(1, model.IPSC860())
	progs := []Program{{Exchange(1, 10)}, {Exchange(0, 20)}}
	if _, err := n.Run(progs); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("size mismatch must fail, got %v", err)
	}
}

func TestExchangeDeadlock(t *testing.T) {
	n := mkNet(1, model.IPSC860())
	progs := []Program{{Exchange(1, 10)}, {}}
	_, err := n.Run(progs)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("unmatched exchange must deadlock, got %v", err)
	}
}

func TestExchangeBadPeer(t *testing.T) {
	n := mkNet(1, model.IPSC860())
	progs := []Program{{Exchange(5, 10)}, {}}
	if _, err := n.Run(progs); err == nil {
		t.Error("exchange with nonexistent node must fail")
	}
}

// Receive-family ops with a peer outside the cube must fail the run with
// an error, like sends and exchanges do.
func TestRecvBadPeer(t *testing.T) {
	for _, prog := range []Program{
		{PostRecv(99)},
		{WaitRecv(99)},
		{Recv(-1)},
	} {
		n := mkNet(1, model.IPSC860())
		if _, err := n.Run([]Program{prog, {}}); err == nil ||
			!strings.Contains(err.Error(), "nonexistent") {
			t.Errorf("%v must fail with a nonexistent-node error, got %v", prog, err)
		}
	}
}

func TestRepeatedExchangesSamePair(t *testing.T) {
	p := model.IPSC860()
	n := mkNet(1, p)
	k := 5
	var a, b Program
	for i := 0; i < k; i++ {
		a = append(a, Exchange(1, 10))
		b = append(b, Exchange(0, 10))
	}
	res, err := n.Run([]Program{a, b})
	if err != nil {
		t.Fatal(err)
	}
	one := p.EffLambda() + p.Tau*10 + p.EffDelta()
	if !almost(res.Makespan, float64(k)*one, 1e-6) {
		t.Errorf("makespan = %v, want %v", res.Makespan, float64(k)*one)
	}
	if res.Messages != 2*k {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestSendRecvTiming(t *testing.T) {
	p := model.IPSC860Raw()
	n := mkNet(3, p)
	progs := emptyPrograms(8)
	progs[0] = Program{Send(5, 64, Unforced)} // distance 2
	progs[5] = Program{Recv(0), Compute(10)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	// 64 ≤ 100 bytes: no reserve-ack.
	arrival := p.Lambda + p.Tau*64 + p.Delta*2
	if !almost(res.NodeFinish[5], arrival+10, 1e-9) {
		t.Errorf("receiver finish = %v, want %v", res.NodeFinish[5], arrival+10)
	}
	if res.DroppedForced != 0 {
		t.Error("unforced message must not drop")
	}
}

func TestUnforcedReserveAckAboveThreshold(t *testing.T) {
	p := model.IPSC860Raw()
	n := mkNet(2, p)

	run := func(m int) float64 {
		progs := emptyPrograms(4)
		progs[0] = Program{Send(1, m, Unforced)}
		progs[1] = Program{Recv(0)}
		res, err := n.Run(progs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	below := run(100)
	above := run(101)
	extra := above - below
	// Reserve-ack adds 2(λ0 + δh) beyond the marginal byte cost.
	want := 2*(p.LambdaZero+p.Delta*1) + p.Tau*1
	if !almost(extra, want, 1e-9) {
		t.Errorf("reserve-ack penalty = %v, want %v", extra, want)
	}
}

// A FORCED message arriving before its receive is posted is dropped
// (§7.3: omitting the synchronization "is fatal").
func TestForcedDroppedWithoutPostedReceive(t *testing.T) {
	p := model.IPSC860Raw()
	n := mkNet(2, p)
	progs := emptyPrograms(4)
	progs[0] = Program{Send(1, 8, Forced)}
	// Receiver is busy computing past the arrival, then posts+waits.
	progs[1] = Program{Compute(10_000), Recv(0)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedForced != 1 {
		t.Errorf("DroppedForced = %d, want 1", res.DroppedForced)
	}
}

// Pre-posting the receive (the paper's implementation pattern) avoids the
// drop even when the receiver is late to wait.
func TestForcedSafeWithPrepostedReceive(t *testing.T) {
	p := model.IPSC860Raw()
	n := mkNet(2, p)
	progs := emptyPrograms(4)
	progs[0] = Program{Send(1, 8, Forced)}
	progs[1] = Program{PostRecv(0), Compute(10_000), WaitRecv(0)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedForced != 0 {
		t.Errorf("DroppedForced = %d, want 0", res.DroppedForced)
	}
	if !almost(res.NodeFinish[1], 10_000, 1e-9) {
		t.Errorf("receiver finish = %v (message should have arrived during compute)",
			res.NodeFinish[1])
	}
}

func TestBarrierCostAndRelease(t *testing.T) {
	p := model.IPSC860()
	d := 4
	n := mkNet(d, p)
	progs := emptyPrograms(16)
	for i := range progs {
		progs[i] = Program{Compute(float64(i)), Barrier()}
	}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	want := 15 + p.GlobalSync(d) // slowest arrival + 150·d
	if !almost(res.Makespan, want, 1e-9) {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	for i, f := range res.NodeFinish {
		if !almost(f, want, 1e-9) {
			t.Errorf("node %d finish %v, want %v (all release together)", i, f, want)
		}
	}
	if res.Barriers != 1 {
		t.Errorf("barriers = %d", res.Barriers)
	}
}

func TestSequentialBarriers(t *testing.T) {
	p := model.IPSC860()
	d := 2
	n := mkNet(d, p)
	progs := emptyPrograms(4)
	for i := range progs {
		progs[i] = Program{Barrier(), Barrier(), Barrier()}
	}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != 3 {
		t.Errorf("barriers = %d, want 3", res.Barriers)
	}
	if !almost(res.Makespan, 3*p.GlobalSync(d), 1e-9) {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestShuffleCost(t *testing.T) {
	p := model.IPSC860()
	n := mkNet(2, p)
	progs := emptyPrograms(4)
	progs[0] = Program{Shuffle(1000)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, p.Rho*1000, 1e-9) {
		t.Errorf("shuffle makespan = %v, want %v", res.Makespan, p.Rho*1000)
	}
}

func TestNegativeComputeFails(t *testing.T) {
	n := mkNet(1, model.IPSC860())
	progs := []Program{{Compute(-5)}, {}}
	if _, err := n.Run(progs); err == nil {
		t.Error("negative compute must fail")
	}
}

// Two circuits sharing a directed link must serialize — the edge
// contention mechanism of §2. Sends 0→3 and 1→3 share edge 1→3? Under
// e-cube, 0→3 routes 0→1→3 and 1→3 routes 1→3: both use directed link
// 1→3.
func TestEdgeContentionSerializes(t *testing.T) {
	p := model.IPSC860Raw()
	n := mkNet(2, p)
	progs := emptyPrograms(4)
	progs[0] = Program{Send(3, 50, Unforced)}
	progs[1] = Program{Send(3, 50, Unforced)}
	progs[3] = Program{Recv(0), Recv(1)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentionStall <= 0 {
		t.Error("expected contention stall on shared link 1→3")
	}
	if res.MaxEdgeQueue < 2 {
		t.Errorf("MaxEdgeQueue = %d, want ≥2", res.MaxEdgeQueue)
	}
	// Serial lower bound: the second circuit cannot start before the
	// first releases the shared link.
	first := p.RawMessageTime(50, 2) // 0→3, distance 2
	if res.Makespan <= first {
		t.Errorf("makespan %v must exceed first circuit %v", res.Makespan, first)
	}
}

// Opposite directions of one wire are distinct resources: 0→1 and 1→0
// simultaneously must not stall.
func TestFullDuplexLinks(t *testing.T) {
	p := model.IPSC860Raw()
	n := mkNet(1, p)
	progs := []Program{
		{Send(1, 40, Unforced), Recv(1)},
		{Send(0, 40, Unforced), Recv(0)},
	}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentionStall != 0 {
		t.Errorf("full-duplex sends must not contend, stall=%v", res.ContentionStall)
	}
	if !almost(res.Makespan, p.RawMessageTime(40, 1), 1e-9) {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

// Determinism: identical runs produce identical results.
func TestRunDeterministic(t *testing.T) {
	build := func() ([]Program, *Network) {
		n := mkNet(3, model.IPSC860())
		progs := emptyPrograms(8)
		for i := range progs {
			progs[i] = Program{Barrier(), Exchange(i^5, 33), Shuffle(264), Exchange(i^3, 33)}
		}
		return progs, n
	}
	p1, n1 := build()
	r1, err := n1.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, n2 := build()
	r2, err := n2.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Messages != r2.Messages ||
		r1.ContentionStall != r2.ContentionStall {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestMsgTypeAndOpKindStrings(t *testing.T) {
	if Forced.String() != "FORCED" || Unforced.String() != "UNFORCED" {
		t.Error("MsgType strings")
	}
	if MsgType(9).String() == "" || OpKind(99).String() == "" {
		t.Error("unknown enum strings must not be empty")
	}
	kinds := []OpKind{OpExchange, OpSend, OpPostRecv, OpWaitRecv, OpRecv, OpShuffle, OpCompute, OpBarrier}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate OpKind string %q", s)
		}
		seen[s] = true
	}
}

func TestCubeAndParamsAccessors(t *testing.T) {
	p := model.IPSC860()
	n := mkNet(4, p)
	if n.Topo().NumDims() != 4 || n.Nodes() != 16 {
		t.Error("Topo accessor")
	}
	if n.Params().Lambda != p.Lambda {
		t.Error("Params accessor")
	}
}

func TestEventBudgetExhaustion(t *testing.T) {
	n := mkNet(2, model.IPSC860())
	n.SetEventBudget(3)
	progs := emptyPrograms(4)
	for i := range progs {
		progs[i] = Program{Compute(1), Compute(1), Compute(1), Compute(1)}
	}
	if _, err := n.Run(progs); err == nil ||
		!strings.Contains(err.Error(), "budget") {
		t.Errorf("tiny budget must trip the watchdog, got %v", err)
	}
	n.SetEventBudget(0) // restore default
	if _, err := n.Run(progs); err != nil {
		t.Errorf("default budget must suffice: %v", err)
	}
}

// The budget error must be actionable: events executed plus each
// unfinished node's program counter and current op, matching the detail
// of the deadlock error path.
func TestEventBudgetErrorDetail(t *testing.T) {
	n := mkNet(2, model.IPSC860())
	n.SetEventBudget(5)
	progs := emptyPrograms(4)
	for i := range progs {
		progs[i] = Program{Compute(1), Exchange(i^1, 16), Compute(1)}
	}
	_, err := n.Run(progs)
	if err == nil {
		t.Fatal("tiny budget must trip the watchdog")
	}
	msg := err.Error()
	for _, want := range []string{"budget", "5 events", "unfinished", "node 0 at op", "/3", "peer"} {
		if !strings.Contains(msg, want) {
			t.Errorf("budget error missing %q: %v", want, msg)
		}
	}
	// Many stuck nodes are summarized, not listed exhaustively.
	big := mkNet(4, model.IPSC860())
	big.SetEventBudget(1)
	bigProgs := emptyPrograms(16)
	for i := range bigProgs {
		bigProgs[i] = Program{Barrier()}
	}
	_, err = big.Run(bigProgs)
	if err == nil || !strings.Contains(err.Error(), "more") {
		t.Errorf("16 stuck nodes should be summarized: %v", err)
	}
}

// sliceSource adapts programs to the Source interface directly, to pin
// RunSource's behaviour against Run's.
type sliceSource []Program

func (s sliceSource) NumNodes() int    { return len(s) }
func (s sliceSource) NumOps(p int) int { return len(s[p]) }
func (s sliceSource) Op(p, i int) Op   { return s[p][i] }

func TestRunSourceMatchesRun(t *testing.T) {
	p := model.IPSC860()
	build := func() []Program {
		progs := emptyPrograms(8)
		for i := range progs {
			progs[i] = Program{Barrier(), Exchange(i^5, 33), Shuffle(264), Exchange(i^3, 33)}
		}
		return progs
	}
	n1 := mkNet(3, p)
	r1, err := n1.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	n2 := mkNet(3, p)
	r2, err := n2.RunSource(sliceSource(build()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Messages != r2.Messages || r1.Barriers != r2.Barriers {
		t.Errorf("RunSource %+v differs from Run %+v", r2, r1)
	}
	if _, err := n2.RunSource(sliceSource(make([]Program, 3))); err == nil {
		t.Error("wrong source size must fail")
	}
}

func TestTimelineUnderContention(t *testing.T) {
	// Two circuits sharing link 1→3 serialize; the second sender's
	// interval must cover its stall (occupancy = wait + transfer).
	p := model.IPSC860Raw()
	n := mkNet(2, p)
	n.SetTrace(true)
	progs := emptyPrograms(4)
	progs[0] = Program{Send(3, 50, Unforced)}
	progs[1] = Program{Send(3, 50, Unforced)}
	progs[3] = Program{Recv(0), Recv(1)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	var sendSpans []float64
	for _, iv := range res.Timeline {
		if iv.Kind == OpSend {
			sendSpans = append(sendSpans, iv.End-iv.Start)
		}
	}
	if len(sendSpans) != 2 {
		t.Fatalf("send intervals = %d", len(sendSpans))
	}
	if sendSpans[0] == sendSpans[1] {
		t.Error("one send should have stalled longer than the other")
	}
}

func TestNodeFinishMatchesMakespan(t *testing.T) {
	p := model.IPSC860()
	n := mkNet(3, p)
	progs := emptyPrograms(8)
	for i := range progs {
		progs[i] = Program{Compute(float64(i * 10))}
	}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for i, f := range res.NodeFinish {
		if !almost(f, float64(i*10), 1e-9) {
			t.Errorf("node %d finish %v", i, f)
		}
		if f > max {
			max = f
		}
	}
	if res.Makespan != max {
		t.Errorf("makespan %v != max finish %v", res.Makespan, max)
	}
}

func TestJitterZeroIsExact(t *testing.T) {
	p := model.IPSC860()
	n := mkNet(2, p)
	n.SetJitter(0, 1)
	progs := emptyPrograms(4)
	progs[0] = Program{Exchange(1, 100)}
	progs[1] = Program{Exchange(0, 100)}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	want := p.EffLambda() + p.Tau*100 + p.EffDelta()
	if !almost(res.Makespan, want, 1e-9) {
		t.Errorf("zero jitter must be exact: %v vs %v", res.Makespan, want)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	p := model.IPSC860()
	run := func(seed int64) float64 {
		n := mkNet(2, p)
		n.SetJitter(0.05, seed)
		progs := emptyPrograms(4)
		progs[0] = Program{Exchange(1, 100)}
		progs[1] = Program{Exchange(0, 100)}
		res, err := n.Run(progs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	exact := p.EffLambda() + p.Tau*100 + p.EffDelta()
	a := run(7)
	if a < exact*0.95-1e-9 || a > exact*1.05+1e-9 {
		t.Errorf("jittered time %v outside ±5%% of %v", a, exact)
	}
	if a != run(7) {
		t.Error("same seed must reproduce")
	}
	if a == run(8) && run(8) == run(9) {
		t.Error("different seeds should usually differ")
	}
	// Negative frac clamps to zero.
	n := mkNet(1, p)
	n.SetJitter(-1, 0)
	progs := []Program{{Exchange(1, 10)}, {Exchange(0, 10)}}
	res, err := n.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, p.EffLambda()+p.Tau*10+p.EffDelta(), 1e-9) {
		t.Error("negative frac must behave as zero")
	}
}
