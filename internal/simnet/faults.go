package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/topology"
)

// ErrLinkDown is the sentinel wrapped by a run that tried to acquire a
// circuit over a wire a FaultPlan had taken down: circuit-switched
// routes are fixed, so a plan whose schedule crosses a dead wire fails
// loudly instead of silently rerouting. (Statically dead wires of a
// topology.Degraded overlay never reach this point — fault-aware
// routing detours around them before the replay core sees a route.)
var ErrLinkDown = errors.New("simnet: circuit crosses a down link")

// LinkFault is one timed fault on an undirected wire, active for every
// circuit acquired at or after At (virtual µs):
//
//	Factor == 0:  the wire goes down — a circuit acquired at t ≥ At
//	              over it fails the run with ErrLinkDown; circuits
//	              already holding the wire complete.
//	Factor > 1:   the wire slows — transmissions over it take Factor
//	              times longer.
//
// Both directions of the wire fail or slow together.
type LinkFault struct {
	A, B   int
	At     float64
	Factor float64
}

// FaultPlan is a deterministic fault schedule honored by every
// subsequent Run: the replay outcome is a pure function of (programs,
// params, jitter seed, fault plan), so tests can prove a plan survives
// a mid-run fault or fails loudly at a pinned virtual time.
type FaultPlan struct {
	Links []LinkFault
}

// compiledFaults is the per-directed-link-slot form of a FaultPlan,
// built once at SetFaultPlan and read-only afterwards (runs may share
// it concurrently).
type compiledFaults struct {
	downAt   []float64 // +Inf when the slot never goes down
	slowFrom []float64 // +Inf when the slot never slows
	slowFact []float64
}

// SetFaultPlan installs (or, with an empty plan, clears) the timed
// fault schedule. Wires must be adjacent node pairs of the topology and
// factors must be 0 (down) or > 1 (slow); activation times must be
// ≥ 0. Timed faults compose with the static fault state of a
// topology.Degraded overlay: a wire that is statically slow and timed
// slow multiplies both factors once the timed fault activates.
func (n *Network) SetFaultPlan(fp FaultPlan) error {
	if len(fp.Links) == 0 {
		n.faults = nil
		return nil
	}
	base := n.topo
	if d, ok := base.(*topology.Degraded); ok {
		base = d.Base()
	}
	slots := base.Nodes() * base.Degree()
	cf := &compiledFaults{
		downAt:   make([]float64, slots),
		slowFrom: make([]float64, slots),
		slowFact: make([]float64, slots),
	}
	for i := 0; i < slots; i++ {
		cf.downAt[i] = math.Inf(1)
		cf.slowFrom[i] = math.Inf(1)
		cf.slowFact[i] = 1
	}
	for _, lf := range fp.Links {
		if !base.Contains(lf.A) || !base.Contains(lf.B) || base.Distance(lf.A, lf.B) != 1 {
			return fmt.Errorf("simnet: fault on %d-%d: not a wire of %s", lf.A, lf.B, base.Name())
		}
		if lf.At < 0 || math.IsNaN(lf.At) {
			return fmt.Errorf("simnet: fault on %d-%d: bad activation time %v", lf.A, lf.B, lf.At)
		}
		if lf.Factor != 0 && !(lf.Factor > 1 && lf.Factor <= 1e12) {
			return fmt.Errorf("simnet: fault on %d-%d: factor %v (want 0 = down or a finite factor > 1)",
				lf.A, lf.B, lf.Factor)
		}
		for _, slot := range [2]int{base.LinkSlot(lf.A, lf.B), base.LinkSlot(lf.B, lf.A)} {
			if lf.Factor == 0 {
				if lf.At < cf.downAt[slot] {
					cf.downAt[slot] = lf.At
				}
			} else {
				// Earliest activation with the worst factor: one wire
				// rarely carries several timed slow entries.
				if lf.At < cf.slowFrom[slot] {
					cf.slowFrom[slot] = lf.At
				}
				if lf.Factor > cf.slowFact[slot] {
					cf.slowFact[slot] = lf.Factor
				}
			}
		}
	}
	n.faults = cf
	return nil
}

// slotFault returns the duration factor of one directed-link slot for a
// circuit acquired at start: the static Degraded slow factor times the
// timed factor once active, or an ErrLinkDown-wrapping error when a
// timed fault has taken the wire down.
func (st *runState) slotFault(slot int, start float64) (float64, error) {
	cf := st.net.faults
	if cf != nil && start >= cf.downAt[slot] {
		return 0, fmt.Errorf("wire of slot %d down since t=%g µs: %w", slot, cf.downAt[slot], ErrLinkDown)
	}
	f := 1.0
	if st.degr != nil {
		f = st.degr.SlowFactor(slot)
	}
	if cf != nil && start >= cf.slowFrom[slot] {
		f *= cf.slowFact[slot]
	}
	return f, nil
}

// circuitFaults resolves the fault state of the whole circuit src→dst
// acquired at start: the worst per-hop duration factor (a circuit's
// throughput is limited by its slowest wire), or the error of the first
// down wire.
func (st *runState) circuitFaults(src, dst int, start float64) (float64, error) {
	factor := 1.0
	if st.hyper {
		cur, diff := src, src^dst
		for diff != 0 {
			i := bits.TrailingZeros(uint(diff))
			f, err := st.slotFault(cur*st.d+i, start)
			if err != nil {
				return 0, err
			}
			if f > factor {
				factor = f
			}
			cur ^= 1 << uint(i)
			diff &= diff - 1
		}
		return factor, nil
	}
	st.routeBuf = st.topo.AppendRoute(st.routeBuf, src, dst)
	for i := 0; i+1 < len(st.routeBuf); i++ {
		f, err := st.slotFault(st.topo.LinkSlot(st.routeBuf[i], st.routeBuf[i+1]), start)
		if err != nil {
			return 0, err
		}
		if f > factor {
			factor = f
		}
	}
	return factor, nil
}
