// Package simnet is a deterministic discrete-event simulator of a
// circuit-switched machine in the style of the Intel iPSC-860 (paper §2,
// §7), over any topology.Network — hypercube, torus or mesh. It models:
//
//   - dimension-ordered (e-cube on the hypercube) circuit routing: a
//     message holds every directed link on its path for its entire
//     duration;
//   - edge contention: circuits wanting a busy link wait (the paper's
//     measurements show edge contention is "disastrous"; node pass-through
//     contention is free and is only recorded);
//   - the timing model λ + τ·m + δ·h per message and ρ per byte shuffled;
//   - pairwise-synchronized exchanges (§7.2): with synchronization the two
//     transfers proceed concurrently after a zero-byte sync round;
//     without it they serialize;
//   - FORCED vs UNFORCED message types (§7.1): a FORCED message arriving
//     before its receive is posted is dropped (recorded as an error);
//     UNFORCED messages above the size threshold pay a reserve-
//     acknowledge round trip;
//   - global synchronization (§7.3) at 150·d µs per barrier.
//
// Node behaviour is specified as a Program — a sequence of Ops — and the
// network executes one program per node, returning per-node completion
// times and aggregate statistics.
//
// Replay is serial by default: one event engine orders every event in
// the machine. A Source that also declares per-phase sub-block structure
// (the Sharded interface; exchange.CompiledPlan does) can opt into
// parallel replay via SetReplayShards: each phase's node groups are
// verified to share no directed link — from the actual routes, detours
// included — and link-disjoint groups then run on private engines that
// merge at every barrier. Verification failure (a detour crossing spans,
// a fault plan touched by two shards, a mid-window barrier) falls the
// phase back to serial dynamics, so sharded results are always
// bit-identical to serial ones: same makespans, same counters, same
// jitter draws (per-node RNG streams), same float summation order.
package simnet

import "fmt"

// MsgType selects iPSC-860 message semantics (§7.1).
type MsgType int

const (
	// Forced messages are discarded on arrival if no receive is posted.
	Forced MsgType = iota
	// Unforced messages are buffered by the OS; above the network's
	// threshold they pay a reserve-acknowledge round trip.
	Unforced
)

func (t MsgType) String() string {
	switch t {
	case Forced:
		return "FORCED"
	case Unforced:
		return "UNFORCED"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// OpKind enumerates node operations.
type OpKind int

const (
	// OpExchange performs a pairwise exchange of Bytes with Peer: both
	// nodes send and receive. This is the building block of both the
	// Standard Exchange steps and the circuit-switched schedule (§4).
	OpExchange OpKind = iota
	// OpSend transmits Bytes to Peer with the given message Type.
	OpSend
	// OpPostRecv posts a receive buffer for a message from Peer without
	// waiting (the paper's implementation posts all receives up front).
	OpPostRecv
	// OpWaitRecv blocks until a message from Peer has been delivered.
	OpWaitRecv
	// OpRecv is OpPostRecv immediately followed by OpWaitRecv.
	OpRecv
	// OpShuffle charges the local data-permutation cost ρ·Bytes.
	OpShuffle
	// OpCompute charges Micros of local computation.
	OpCompute
	// OpBarrier joins a global synchronization across all nodes.
	OpBarrier
)

func (k OpKind) String() string {
	switch k {
	case OpExchange:
		return "exchange"
	case OpSend:
		return "send"
	case OpPostRecv:
		return "postrecv"
	case OpWaitRecv:
		return "waitrecv"
	case OpRecv:
		return "recv"
	case OpShuffle:
		return "shuffle"
	case OpCompute:
		return "compute"
	case OpBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of a node program.
type Op struct {
	Kind   OpKind
	Peer   int     // partner node for communication ops
	Bytes  int     // payload size for communication/shuffle ops
	Micros float64 // compute duration for OpCompute
	Type   MsgType // message type for OpSend
}

// Program is the operation sequence executed by one node.
type Program []Op

// Exchange returns a pairwise-exchange op.
func Exchange(peer, bytes int) Op { return Op{Kind: OpExchange, Peer: peer, Bytes: bytes} }

// Send returns a one-sided send op.
func Send(peer, bytes int, t MsgType) Op {
	return Op{Kind: OpSend, Peer: peer, Bytes: bytes, Type: t}
}

// PostRecv returns a receive-posting op.
func PostRecv(peer int) Op { return Op{Kind: OpPostRecv, Peer: peer} }

// WaitRecv returns a receive-wait op.
func WaitRecv(peer int) Op { return Op{Kind: OpWaitRecv, Peer: peer} }

// Recv returns a post-and-wait receive op.
func Recv(peer int) Op { return Op{Kind: OpRecv, Peer: peer} }

// Shuffle returns a local-permutation op over the given byte count.
func Shuffle(bytes int) Op { return Op{Kind: OpShuffle, Bytes: bytes} }

// Compute returns a local-computation op of the given duration in µs.
func Compute(micros float64) Op { return Op{Kind: OpCompute, Micros: micros} }

// Barrier returns a global-synchronization op.
func Barrier() Op { return Op{Kind: OpBarrier} }
