package simnet

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/topology"
)

// jitter perturbs a transmission duration by the network's configured
// measurement noise (a no-op at the default frac = 0).
func (st *runState) jitter(dur float64) float64 {
	f := st.net.jitterFrac
	if f == 0 {
		return dur
	}
	return dur * (1 + f*(2*st.rng.Float64()-1))
}

// pathEdges returns the directed links of the e-cube route src→dst.
func (st *runState) pathEdges(src, dst int) ([]topology.Edge, error) {
	return st.net.cube.RouteEdges(src, dst)
}

// edgesFreeAt returns the earliest time ≥ t at which all given links are
// free.
func (st *runState) edgesFreeAt(edges []topology.Edge, t float64) float64 {
	start := t
	for _, e := range edges {
		if es := st.edge(e); es.busyUntil > start {
			start = es.busyUntil
		}
	}
	return start
}

// holdEdges reserves the given links for [start, finish).
func (st *runState) holdEdges(edges []topology.Edge, start, finish float64) {
	for _, e := range edges {
		es := st.edge(e)
		es.busyUntil = finish
		es.queue++
		if es.queue > es.maxQueue {
			es.maxQueue = es.queue
		}
		st.eng.At(event.Time(finish), func(event.Time) { es.queue-- })
	}
}

// reservePath acquires the e-cube circuit src→dst for a transmission
// wanting to start no earlier than t and lasting dur µs. It returns the
// actual start time (delayed if any link is busy — edge contention).
func (st *runState) reservePath(src, dst int, t, dur float64) (float64, error) {
	if src == dst {
		return t, nil
	}
	edges, err := st.pathEdges(src, dst)
	if err != nil {
		return 0, err
	}
	start := st.edgesFreeAt(edges, t)
	st.holdEdges(edges, start, start+dur)
	st.res.ContentionStall += start - t
	return start, nil
}

// reservePair acquires both directed circuits of a pairwise exchange at a
// common start time.
func (st *runState) reservePair(p, q int, t, dur float64) (float64, error) {
	fw, err := st.pathEdges(p, q)
	if err != nil {
		return 0, err
	}
	bw, err := st.pathEdges(q, p)
	if err != nil {
		return 0, err
	}
	start := st.edgesFreeAt(fw, t)
	start = st.edgesFreeAt(bw, start)
	st.holdEdges(fw, start, start+dur)
	st.holdEdges(bw, start, start+dur)
	st.res.ContentionStall += start - t
	return start, nil
}

func (st *runState) edge(e topology.Edge) *edgeState {
	es, ok := st.edges[e]
	if !ok {
		es = &edgeState{}
		st.edges[e] = es
	}
	return es
}

// enterBarrier implements OpBarrier: all nodes wait for the last arrival,
// then pay the global synchronization cost 150·d µs (§7.3) together.
func (st *runState) enterBarrier(p int) {
	if st.bar == nil {
		st.bar = &barrierState{}
	}
	b := st.bar
	b.arrived++
	if st.ready[p] > b.maxTime {
		b.maxTime = st.ready[p]
	}
	b.waiters = append(b.waiters, p)
	if b.arrived < st.net.cube.Nodes() {
		st.park()
		return
	}
	release := b.maxTime + st.net.params.GlobalSync(st.net.cube.Dim())
	st.res.Barriers++
	st.bar = nil
	for _, q := range b.waiters {
		st.advance(q, release)
	}
}

// enterExchange implements OpExchange via a rendezvous: the first node to
// arrive parks; the second computes the circuit timing for both.
//
// Timing (§7.2, §7.4): from the instant both parties are ready,
//
//	with pairwise sync:    a zero-byte sync round (λ0 + δh), then both
//	                       transfers run concurrently: λ + τm + δh;
//	without pairwise sync: the two transfers serialize (the iPSC-860
//	                       behaviour Seidel et al. measured when the
//	                       transmissions do not start simultaneously):
//	                       2·(λ + τm + δh).
//
// The circuits in both directions hold their links for the whole exchange.
func (st *runState) enterExchange(p int, op Op) {
	q := op.Peer
	if q == p {
		st.advance(p, st.ready[p]) // self-exchange is a no-op
		return
	}
	if !st.net.cube.Contains(q) {
		st.fail(fmt.Errorf("simnet: node %d: exchange with nonexistent node %d", p, q))
		return
	}
	lo, hi := p, q
	if lo > hi {
		lo, hi = hi, lo
	}
	id := pairID{lo, hi}
	key := pairKey{lo, hi, st.pairSeq[id]}
	pe, ok := st.pend[key]
	if !ok {
		st.pend[key] = &pendingExchange{firstNode: p, firstReady: st.ready[p], bytes: op.Bytes}
		st.park()
		return
	}
	if pe.firstNode == p {
		st.fail(fmt.Errorf("simnet: node %d exchanged with %d twice concurrently", p, q))
		return
	}
	if pe.bytes != op.Bytes {
		st.fail(fmt.Errorf("simnet: exchange size mismatch between %d (%dB) and %d (%dB)",
			pe.firstNode, pe.bytes, p, op.Bytes))
		return
	}
	delete(st.pend, key)
	st.pairSeq[id]++

	h := st.net.cube.Distance(p, q)
	both := st.ready[p]
	if pe.firstReady > both {
		both = pe.firstReady
	}
	dur := st.jitter(st.net.params.ExchangeTime(op.Bytes, h))
	start, err := st.reservePair(p, q, both, dur)
	if err != nil {
		st.fail(err)
		return
	}
	finish := start + dur
	st.res.Messages += 2
	st.res.BytesMoved += 2 * op.Bytes
	st.advance(p, finish)
	st.advance(pe.firstNode, finish)
}

// doSend implements OpSend: the sender owns the circuit for the message
// duration; delivery is recorded in the receiver's inbox.
func (st *runState) doSend(p int, op Op) {
	q := op.Peer
	if !st.net.cube.Contains(q) {
		st.fail(fmt.Errorf("simnet: node %d: send to nonexistent node %d", p, q))
		return
	}
	if q == p {
		st.deliver(p, p, st.ready[p], op.Type) // local delivery is free
		st.advance(p, st.ready[p])
		return
	}
	prm := st.net.params
	h := st.net.cube.Distance(p, q)
	var dur float64
	if op.Type == Unforced {
		dur = prm.UnforcedMessageTime(op.Bytes, h)
	} else {
		dur = prm.RawMessageTime(op.Bytes, h)
	}
	dur = st.jitter(dur)
	start, err := st.reservePath(p, q, st.ready[p], dur)
	if err != nil {
		st.fail(err)
		return
	}
	finish := start + dur
	st.res.Messages++
	st.res.BytesMoved += op.Bytes
	st.eng.At(event.Time(finish), func(event.Time) { st.deliver(p, q, finish, op.Type) })
	st.advance(p, finish)
}

// deliver records arrival of the next message from src at dst and wakes a
// parked waiter.
func (st *runState) deliver(src, dst int, t float64, mt MsgType) {
	id := pairID{src, dst}
	key := msgKey{src, dst, st.arrSeq[id]}
	st.arrSeq[id]++
	e := st.inboxEntry(key)
	e.arrived = true
	e.arriveAt = t
	if mt == Forced && !e.posted {
		st.res.DroppedForced++
	}
	if e.waiting {
		e.waiting = false
		wake := t
		if e.waiterCPU > wake {
			wake = e.waiterCPU
		}
		st.advance(dst, wake)
	}
}

// doPostRecv implements OpPostRecv for the next unposted message slot from
// peer.
func (st *runState) doPostRecv(p, peer int) {
	id := pairID{peer, p}
	key := msgKey{peer, p, st.postSeq[id]}
	st.postSeq[id]++
	st.inboxEntry(key).posted = true
}

// doWaitRecv implements OpWaitRecv: blocks until the next unconsumed
// message from peer has arrived.
func (st *runState) doWaitRecv(p, peer int) {
	id := pairID{peer, p}
	key := msgKey{peer, p, st.waitSeq[id]}
	st.waitSeq[id]++
	e := st.inboxEntry(key)
	if e.arrived {
		wake := e.arriveAt
		if st.ready[p] > wake {
			wake = st.ready[p]
		}
		st.advance(p, wake)
		return
	}
	e.waiting = true
	e.waiterCPU = st.ready[p]
	st.park()
}

func (st *runState) inboxEntry(k msgKey) *inboxEntry {
	e, ok := st.inbox[k]
	if !ok {
		e = &inboxEntry{}
		st.inbox[k] = e
	}
	return e
}
