package simnet

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/event"
)

// jitter perturbs a transmission duration by the network's configured
// measurement noise (a no-op at the default frac = 0). The draw comes
// from node p's private stream: p is the node computing the transfer (the
// sender of a send, the second arriver of an exchange rendezvous), which
// is deterministic for a given program, so the noise sequence does not
// depend on how unrelated nodes' events interleave — the property the
// sharded replay mode needs for bit-identity with serial replay.
func (st *runState) jitter(p int, dur float64) float64 {
	f := st.net.jitterFrac
	if f == 0 {
		return dur
	}
	return dur * (1 + f*(2*nextJitter(&st.rngs[p])-1))
}

// seedJitterStreams builds one splitmix64 state per node from the network
// seed. Each node's stream is decorrelated from its neighbours' by the
// splitmix64 finalizer over (seed, node id).
func seedJitterStreams(seed int64, nodes int) []uint64 {
	s := make([]uint64, nodes)
	for p := range s {
		z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(p+1)
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		s[p] = z
	}
	return s
}

// nextJitter advances one node's splitmix64 state and returns a uniform
// draw in [0, 1) with the full 53 bits of float64 precision.
func nextJitter(state *uint64) float64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) * 0x1p-53
}

// dist returns the routed distance between two nodes: the Hamming
// bit-trick on the hypercube, the topology's Distance elsewhere.
func (st *runState) dist(a, b int) int {
	if st.hyper {
		return bits.OnesCount(uint(a ^ b))
	}
	return st.topo.Distance(a, b)
}

// circuitFreeAt returns the earliest time ≥ t at which every directed
// link of the dimension-ordered route src→dst is free. On the hypercube
// the route is walked by flipping differing label bits lowest-first
// (edges[u*d+i] is the link from node u across dimension i), so no edge
// list is materialized; other topologies walk a reused route scratch.
func (st *runState) circuitFreeAt(src, dst int, t float64) float64 {
	if st.hyper {
		cur, diff := src, src^dst
		for diff != 0 {
			i := bits.TrailingZeros(uint(diff))
			if e := &st.edges[cur*st.d+i]; e.busyUntil > t {
				t = e.busyUntil
			}
			cur ^= 1 << uint(i)
			diff &= diff - 1
		}
		return t
	}
	st.routeBuf = st.topo.AppendRoute(st.routeBuf, src, dst)
	for i := 0; i+1 < len(st.routeBuf); i++ {
		slot := st.topo.LinkSlot(st.routeBuf[i], st.routeBuf[i+1])
		if e := &st.edges[slot]; e.busyUntil > t {
			t = e.busyUntil
		}
	}
	return t
}

// holdCircuit reserves every link of the route src→dst until finish.
// Holds on one link never overlap (busyUntil is monotone), so the
// per-link occupancy count is maintained by pruning finished holds at
// reservation time (edgeState.hold) instead of scheduling a release
// event per link — the old per-hold events dominated large replays.
func (st *runState) holdCircuit(src, dst int, finish float64) {
	now := float64(st.eng.Now())
	if st.hyper {
		cur, diff := src, src^dst
		for diff != 0 {
			i := bits.TrailingZeros(uint(diff))
			e := &st.edges[cur*st.d+i]
			e.busyUntil = finish
			if q := e.hold(now, finish); q > e.maxQueue {
				e.maxQueue = q
			}
			cur ^= 1 << uint(i)
			diff &= diff - 1
		}
		return
	}
	st.routeBuf = st.topo.AppendRoute(st.routeBuf, src, dst)
	for i := 0; i+1 < len(st.routeBuf); i++ {
		e := &st.edges[st.topo.LinkSlot(st.routeBuf[i], st.routeBuf[i+1])]
		e.busyUntil = finish
		if q := e.hold(now, finish); q > e.maxQueue {
			e.maxQueue = q
		}
	}
}

// reservePath acquires the e-cube circuit src→dst for a transmission
// wanting to start no earlier than t and lasting dur µs. It returns the
// actual start time (delayed if any link is busy — edge contention) and
// the fault-adjusted duration: slow wires on the route stretch the
// transmission by the worst per-hop factor, and a wire a FaultPlan took
// down before the acquisition instant fails with ErrLinkDown.
// The wait is charged to src's per-node stall account (summed in node
// order at run end) so the reported total is independent of the global
// event interleaving.
func (st *runState) reservePath(src, dst int, t, dur float64) (start, adjDur float64, err error) {
	if src == dst {
		return t, dur, nil
	}
	start = st.circuitFreeAt(src, dst, t)
	if st.faulty {
		f, ferr := st.circuitFaults(src, dst, start)
		if ferr != nil {
			return 0, 0, ferr
		}
		dur *= f
	}
	st.holdCircuit(src, dst, start+dur)
	st.stall[src] += start - t
	return start, dur, nil
}

// reservePair acquires both directed circuits of a pairwise exchange at
// a common start time; both directions hold for the same fault-adjusted
// duration (the exchange completes when its slowest direction does). The
// wait is charged to p — the second arriver, who computes the exchange —
// which is deterministic per program (see reservePath).
func (st *runState) reservePair(p, q int, t, dur float64) (start, adjDur float64, err error) {
	start = st.circuitFreeAt(p, q, t)
	start = st.circuitFreeAt(q, p, start)
	if st.faulty {
		f, ferr := st.circuitFaults(p, q, start)
		if ferr != nil {
			return 0, 0, ferr
		}
		if f2, ferr := st.circuitFaults(q, p, start); ferr != nil {
			return 0, 0, ferr
		} else if f2 > f {
			f = f2
		}
		dur *= f
	}
	st.holdCircuit(p, q, start+dur)
	st.holdCircuit(q, p, start+dur)
	st.stall[p] += start - t
	return start, dur, nil
}

// enterBarrier implements OpBarrier: all nodes wait for the last arrival,
// then pay the global synchronization cost 150·d µs (§7.3) together.
func (st *runState) enterBarrier(p int) {
	if st.windowed {
		// Barriers are global; a shard interprets only the rows between
		// them, with the orchestrator synchronizing at each boundary. The
		// partitioner rejects windows containing barrier rows, so this is
		// unreachable short of a verification bug.
		st.fail(fmt.Errorf("simnet: node %d: barrier inside a sharded phase window", p))
		return
	}
	b := &st.bar
	b.arrived++
	if st.ready[p] > b.maxTime {
		b.maxTime = st.ready[p]
	}
	b.waiters = append(b.waiters, int32(p))
	if b.arrived < st.n {
		st.park()
		return
	}
	release := b.maxTime + st.net.params.GlobalSync(st.syncD)
	st.res.Barriers++
	waiters := b.waiters
	// Resetting to [:0] reuses the backing array; nothing re-enters the
	// barrier while we release (advance only schedules events).
	b.arrived, b.maxTime, b.waiters = 0, 0, b.waiters[:0]
	// Release in node order, not arrival order. All release events carry
	// the same timestamp, so the engine breaks their ties by insertion
	// sequence; sorting pins that sequence to the node id, making a
	// phase's contention resolution independent of the arrival-order
	// history of earlier phases. A phase simulated standalone then evolves
	// identically to the same phase inside a longer plan up to float
	// tie-breaking: exactly-tied link acquisitions compare absolute times,
	// so a different start offset can still flip a tie (the optimizer's
	// memoized fragment costing documents this as its screening-metric
	// semantics).
	slices.Sort(waiters)
	for _, q := range waiters {
		st.advance(int(q), release)
	}
}

// enterExchange implements OpExchange via a rendezvous: the first node to
// arrive parks in the exPeer/exBytes/exReady slots; the second computes
// the circuit timing for both.
//
// Timing (§7.2, §7.4): from the instant both parties are ready,
//
//	with pairwise sync:    a zero-byte sync round (λ0 + δh), then both
//	                       transfers run concurrently: λ + τm + δh;
//	without pairwise sync: the two transfers serialize (the iPSC-860
//	                       behaviour Seidel et al. measured when the
//	                       transmissions do not start simultaneously):
//	                       2·(λ + τm + δh).
//
// The circuits in both directions hold their links for the whole exchange.
func (st *runState) enterExchange(p int, op Op) {
	q := op.Peer
	if q == p {
		st.advance(p, st.ready[p]) // self-exchange is a no-op
		return
	}
	if q < 0 || q >= st.n {
		st.fail(fmt.Errorf("simnet: node %d: exchange with nonexistent node %d", p, q))
		return
	}
	if st.exPeer[q] != int32(p) {
		// First to arrive: park until the partner shows up.
		st.exPeer[p] = int32(q)
		st.exBytes[p] = op.Bytes
		st.exReady[p] = st.ready[p]
		st.park()
		return
	}
	firstBytes, firstReady := st.exBytes[q], st.exReady[q]
	st.exPeer[q] = -1
	if firstBytes != op.Bytes {
		st.fail(fmt.Errorf("simnet: exchange size mismatch between %d (%dB) and %d (%dB)",
			q, firstBytes, p, op.Bytes))
		return
	}

	h := st.dist(p, q)
	both := st.ready[p]
	if firstReady > both {
		both = firstReady
	}
	dur := st.jitter(p, st.net.params.ExchangeTime(op.Bytes, h))
	start, dur, err := st.reservePair(p, q, both, dur)
	if err != nil {
		st.fail(fmt.Errorf("simnet: exchange %d↔%d at t=%g µs: %w", p, q, both, err))
		return
	}
	finish := start + dur
	st.res.Messages += 2
	st.res.BytesMoved += 2 * op.Bytes
	st.advance(p, finish)
	st.advance(q, finish)
}

// channel returns the index into st.chans of the ordered pair src→dst,
// creating it on first contact. Per-source channel lists stay short (a
// node talks to at most a handful of peers), so the linear scan beats a
// map and allocates only when a new pair first communicates.
func (st *runState) channel(src, dst int) int {
	refs := st.outIdx[src]
	for _, r := range refs {
		if int(r.dst) == dst {
			return int(r.ch)
		}
	}
	ci := len(st.chans)
	st.chans = append(st.chans, msgChan{src: int32(src), dst: int32(dst)})
	st.outIdx[src] = append(refs, chanRef{dst: int32(dst), ch: int32(ci)})
	return ci
}

// slot returns channel ci's i-th message slot, extending the ring as
// posts/waits/sends run ahead of each other.
func (st *runState) slot(ci, i int) *inboxSlot {
	ch := &st.chans[ci]
	for len(ch.slots) <= i {
		ch.slots = append(ch.slots, inboxSlot{})
	}
	return &ch.slots[i]
}

// doSend implements OpSend: the sender owns the circuit for the message
// duration; delivery is recorded in the receiver's channel.
func (st *runState) doSend(p int, op Op) {
	q := op.Peer
	if q < 0 || q >= st.n {
		st.fail(fmt.Errorf("simnet: node %d: send to nonexistent node %d", p, q))
		return
	}
	ci := st.channel(p, q)
	ch := &st.chans[ci]
	s := st.slot(ci, int(ch.sent))
	ch.sent++
	if op.Type == Forced {
		s.flags |= slotForced
	}
	if q == p {
		st.deliverAt(ci, st.ready[p]) // local delivery is free
		st.advance(p, st.ready[p])
		return
	}
	prm := st.net.params
	h := st.dist(p, q)
	var dur float64
	if op.Type == Unforced {
		dur = prm.UnforcedMessageTime(op.Bytes, h)
	} else {
		dur = prm.RawMessageTime(op.Bytes, h)
	}
	dur = st.jitter(p, dur)
	start, dur, err := st.reservePath(p, q, st.ready[p], dur)
	if err != nil {
		st.fail(fmt.Errorf("simnet: send %d→%d at t=%g µs: %w", p, q, st.ready[p], err))
		return
	}
	finish := start + dur
	st.res.Messages++
	st.res.BytesMoved += op.Bytes
	st.eng.PostArg(event.Time(finish), st.deliverH, ci)
	st.advance(p, finish)
}

// deliverAt records arrival of the next message on channel ci at time t
// and wakes a parked waiter. Per-channel deliveries arrive in send order
// (a sender's transmissions to one destination have increasing finish
// times), so the arrival cursor walks the slots FIFO.
func (st *runState) deliverAt(ci int, t float64) {
	ch := &st.chans[ci]
	s := &ch.slots[ch.arr]
	ch.arr++
	s.flags |= slotArrived
	s.arriveAt = t
	if s.flags&slotForced != 0 && s.flags&slotPosted == 0 {
		st.res.DroppedForced++
	}
	if s.flags&slotWaiting != 0 {
		s.flags &^= slotWaiting
		wake := t
		if s.waiterCPU > wake {
			wake = s.waiterCPU
		}
		st.advance(int(ch.dst), wake)
	}
}

// doPostRecv implements OpPostRecv for the next unposted message slot from
// peer.
func (st *runState) doPostRecv(p, peer int) {
	ci := st.channel(peer, p)
	i := int(st.chans[ci].post)
	st.chans[ci].post++
	st.slot(ci, i).flags |= slotPosted
}

// doWaitRecv implements OpWaitRecv: blocks until the next unconsumed
// message from peer has arrived.
func (st *runState) doWaitRecv(p, peer int) {
	ci := st.channel(peer, p)
	i := int(st.chans[ci].wait)
	st.chans[ci].wait++
	s := st.slot(ci, i)
	if s.flags&slotArrived != 0 {
		wake := s.arriveAt
		if st.ready[p] > wake {
			wake = st.ready[p]
		}
		st.advance(p, wake)
		return
	}
	s.flags |= slotWaiting
	s.waiterCPU = st.ready[p]
	st.park()
}
