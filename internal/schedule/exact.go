package schedule

import (
	"fmt"

	"repro/internal/topology"
)

// BuildExact finds a minimum-step schedule for the transfers by iterative
// deepening over step counts with backtracking. It is exponential and
// intended for small instances only (≤ maxTransfers transfers), where it
// serves as the optimality yardstick for the greedy Build — quantifying
// the §9 open problem's difficulty.
func BuildExact(h topology.Network, transfers []topology.Transfer, maxTransfers int) (*Schedule, error) {
	work := make([]topology.Transfer, 0, len(transfers))
	for _, tr := range transfers {
		if !h.Contains(tr.Src) || !h.Contains(tr.Dst) {
			return nil, fmt.Errorf("schedule: transfer %d→%d outside %s",
				tr.Src, tr.Dst, h.Name())
		}
		if tr.Src != tr.Dst {
			work = append(work, tr)
		}
	}
	if len(work) > maxTransfers {
		return nil, fmt.Errorf("schedule: exact solver limited to %d transfers, got %d",
			maxTransfers, len(work))
	}
	if len(work) == 0 {
		return &Schedule{Net: h}, nil
	}

	// Precompute each transfer's directed edge set.
	edgeSets := make([][]topology.Edge, len(work))
	for i, tr := range work {
		es, err := h.RouteEdges(tr.Src, tr.Dst)
		if err != nil {
			return nil, err
		}
		edgeSets[i] = es
	}

	// The greedy bound caps the search.
	greedy, err := Build(h, work)
	if err != nil {
		return nil, err
	}
	upper := greedy.NumSteps()

	for k := lowerBound(h, work); k <= upper; k++ {
		assign := make([]int, len(work))
		for i := range assign {
			assign[i] = -1
		}
		steps := make([]*stepRes, k)
		for i := range steps {
			steps[i] = newStepRes()
		}
		if solve(work, edgeSets, assign, steps, 0) {
			s := &Schedule{Net: h, Steps: make([][]topology.Transfer, k)}
			for i, st := range assign {
				s.Steps[st] = append(s.Steps[st], work[i])
			}
			return s, nil
		}
	}
	return greedy, nil // unreachable in practice: greedy itself fits in `upper`
}

// lowerBound: a node sending (or receiving) c transfers needs ≥ c steps;
// an edge used by c transfers needs ≥ c steps.
func lowerBound(h topology.Network, work []topology.Transfer) int {
	srcCount := map[int]int{}
	dstCount := map[int]int{}
	edgeCount := map[topology.Edge]int{}
	lb := 1
	for _, tr := range work {
		srcCount[tr.Src]++
		dstCount[tr.Dst]++
		if es, err := h.RouteEdges(tr.Src, tr.Dst); err == nil {
			for _, e := range es {
				edgeCount[e]++
			}
		}
	}
	for _, c := range srcCount {
		if c > lb {
			lb = c
		}
	}
	for _, c := range dstCount {
		if c > lb {
			lb = c
		}
	}
	for _, c := range edgeCount {
		if c > lb {
			lb = c
		}
	}
	return lb
}

type stepRes struct {
	sending   map[int]bool
	receiving map[int]bool
	edges     map[topology.Edge]bool
}

func newStepRes() *stepRes {
	return &stepRes{
		sending:   map[int]bool{},
		receiving: map[int]bool{},
		edges:     map[topology.Edge]bool{},
	}
}

func (s *stepRes) fits(tr topology.Transfer, edges []topology.Edge) bool {
	if s.sending[tr.Src] || s.receiving[tr.Dst] {
		return false
	}
	for _, e := range edges {
		if s.edges[e] {
			return false
		}
	}
	return true
}

func (s *stepRes) add(tr topology.Transfer, edges []topology.Edge) {
	s.sending[tr.Src] = true
	s.receiving[tr.Dst] = true
	for _, e := range edges {
		s.edges[e] = true
	}
}

func (s *stepRes) remove(tr topology.Transfer, edges []topology.Edge) {
	delete(s.sending, tr.Src)
	delete(s.receiving, tr.Dst)
	for _, e := range edges {
		delete(s.edges, e)
	}
}

// solve assigns transfer i to some step, backtracking on conflicts. To
// break step-permutation symmetry, transfer i may only open step j if all
// steps < j are in use by transfers < i.
func solve(work []topology.Transfer, edgeSets [][]topology.Edge, assign []int, steps []*stepRes, i int) bool {
	if i == len(work) {
		return true
	}
	maxUsed := -1
	for j := 0; j < i; j++ {
		if assign[j] > maxUsed {
			maxUsed = assign[j]
		}
	}
	limit := maxUsed + 1
	if limit >= len(steps) {
		limit = len(steps) - 1
	}
	for st := 0; st <= limit; st++ {
		if !steps[st].fits(work[i], edgeSets[i]) {
			continue
		}
		steps[st].add(work[i], edgeSets[i])
		assign[i] = st
		if solve(work, edgeSets, assign, steps, i+1) {
			return true
		}
		steps[st].remove(work[i], edgeSets[i])
		assign[i] = -1
	}
	return false
}
