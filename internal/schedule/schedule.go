// Package schedule attacks the open problem the paper poses in §9:
// "whether we can develop an efficient multiphase algorithm for a given
// arbitrary communication requirement (i.e. an arbitrary directed graph)".
//
// Given any multiset of point-to-point transfers on a d-cube, Build packs
// them greedily into a sequence of steps that are safe to run
// simultaneously on a circuit-switched machine with e-cube routing:
//
//   - one-port constraint: within one step, each node sends at most one
//     message and receives at most one message (the iPSC-860's pairwise
//     behaviour, §7.2);
//   - circuit constraint: no two transfers of a step may share a directed
//     link on their e-cube paths (edge contention is "disastrous", §2).
//
// The result is a correct — though not necessarily optimal — generalized
// schedule: for the complete-exchange requirement the XOR schedule of
// §4.2 remains strictly better, which the tests quantify.
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Schedule is an ordered list of steps; the transfers of one step run
// simultaneously.
type Schedule struct {
	Net   topology.Network
	Steps [][]topology.Transfer
}

// NumSteps returns the number of steps.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// NumTransfers returns the total number of scheduled transfers.
func (s *Schedule) NumTransfers() int {
	total := 0
	for _, st := range s.Steps {
		total += len(st)
	}
	return total
}

// Build packs the transfers into contention-free steps by first-fit
// decreasing path length: longer circuits are placed first (they are the
// hardest to fit), each into the earliest step where both the one-port
// and circuit constraints hold. Self-transfers are dropped. The input
// order does not affect the result (transfers are canonically sorted
// before packing), so schedules are deterministic.
func Build(h topology.Network, transfers []topology.Transfer) (*Schedule, error) {
	work := make([]topology.Transfer, 0, len(transfers))
	for _, tr := range transfers {
		if !h.Contains(tr.Src) || !h.Contains(tr.Dst) {
			return nil, fmt.Errorf("schedule: transfer %d→%d outside %s",
				tr.Src, tr.Dst, h.Name())
		}
		if tr.Src != tr.Dst {
			work = append(work, tr)
		}
	}
	sort.Slice(work, func(i, j int) bool {
		di := h.Distance(work[i].Src, work[i].Dst)
		dj := h.Distance(work[j].Src, work[j].Dst)
		if di != dj {
			return di > dj
		}
		if work[i].Src != work[j].Src {
			return work[i].Src < work[j].Src
		}
		return work[i].Dst < work[j].Dst
	})

	s := &Schedule{Net: h}
	type stepState struct {
		sending   map[int]bool
		receiving map[int]bool
		edges     map[topology.Edge]bool
	}
	var states []*stepState

	place := func(tr topology.Transfer) error {
		edges, err := h.RouteEdges(tr.Src, tr.Dst)
		if err != nil {
			return err
		}
		for i, st := range states {
			if st.sending[tr.Src] || st.receiving[tr.Dst] {
				continue
			}
			clash := false
			for _, e := range edges {
				if st.edges[e] {
					clash = true
					break
				}
			}
			if clash {
				continue
			}
			st.sending[tr.Src] = true
			st.receiving[tr.Dst] = true
			for _, e := range edges {
				st.edges[e] = true
			}
			s.Steps[i] = append(s.Steps[i], tr)
			return nil
		}
		st := &stepState{
			sending:   map[int]bool{tr.Src: true},
			receiving: map[int]bool{tr.Dst: true},
			edges:     make(map[topology.Edge]bool, len(edges)),
		}
		for _, e := range edges {
			st.edges[e] = true
		}
		states = append(states, st)
		s.Steps = append(s.Steps, []topology.Transfer{tr})
		return nil
	}
	for _, tr := range work {
		if err := place(tr); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Verify checks the one-port and circuit constraints of every step and
// that the schedule serves exactly the requested transfers (as a
// multiset, self-transfers excluded).
func (s *Schedule) Verify(requested []topology.Transfer) error {
	want := map[topology.Transfer]int{}
	for _, tr := range requested {
		if tr.Src != tr.Dst {
			want[tr]++
		}
	}
	for k, step := range s.Steps {
		sending := map[int]bool{}
		receiving := map[int]bool{}
		for _, tr := range step {
			if sending[tr.Src] {
				return fmt.Errorf("schedule: step %d: node %d sends twice", k, tr.Src)
			}
			if receiving[tr.Dst] {
				return fmt.Errorf("schedule: step %d: node %d receives twice", k, tr.Dst)
			}
			sending[tr.Src] = true
			receiving[tr.Dst] = true
			want[tr]--
			if want[tr] < 0 {
				return fmt.Errorf("schedule: transfer %d→%d scheduled too often", tr.Src, tr.Dst)
			}
		}
		r, err := topology.Analyze(s.Net, step)
		if err != nil {
			return err
		}
		if !r.EdgeContentionFree() {
			return fmt.Errorf("schedule: step %d has edge contention on %v",
				k, r.ContendedEdges())
		}
	}
	for tr, c := range want {
		if c > 0 {
			return fmt.Errorf("schedule: transfer %d→%d not scheduled", tr.Src, tr.Dst)
		}
	}
	return nil
}

// Model returns the analytic execution time of the schedule with uniform
// message size m: each step costs λ + τm + δ·(longest path in the step),
// steps are separated by the completion of the slowest circuit.
func (s *Schedule) Model(prm model.Params, m int) float64 {
	total := 0.0
	for _, step := range s.Steps {
		maxDist := 0
		for _, tr := range step {
			if d := s.Net.Distance(tr.Src, tr.Dst); d > maxDist {
				maxDist = d
			}
		}
		total += prm.Lambda + prm.Tau*float64(m) + prm.Delta*float64(maxDist)
	}
	return total
}

// Programs lowers the schedule to simnet programs with uniform message
// size m: all receives pre-posted (FORCED), a global barrier, then each
// node performs its sends in step order and waits for its receives in
// step order. Step boundaries are enforced with barriers so the
// simulation mirrors the analytic model's lockstep assumption.
func (s *Schedule) Programs(m int) []simnet.Program {
	n := s.Net.Nodes()
	progs := make([]simnet.Program, n)
	// Pre-post every receive.
	for _, step := range s.Steps {
		for _, tr := range step {
			progs[tr.Dst] = append(progs[tr.Dst], simnet.PostRecv(tr.Src))
		}
	}
	for p := 0; p < n; p++ {
		progs[p] = append(progs[p], simnet.Barrier())
	}
	for _, step := range s.Steps {
		for _, tr := range step {
			progs[tr.Src] = append(progs[tr.Src], simnet.Send(tr.Dst, m, simnet.Forced))
			progs[tr.Dst] = append(progs[tr.Dst], simnet.WaitRecv(tr.Src))
		}
		for p := 0; p < n; p++ {
			progs[p] = append(progs[p], simnet.Barrier())
		}
	}
	return progs
}

// Simulate runs the schedule's programs on a simulated network.
func (s *Schedule) Simulate(prm model.Params, m int) (simnet.Result, error) {
	net := simnet.New(s.Net, prm)
	return net.Run(s.Programs(m))
}

// CompleteGraph returns the complete-exchange requirement: every ordered
// pair (src ≠ dst) once.
func CompleteGraph(h topology.Network) []topology.Transfer {
	n := h.Nodes()
	out := make([]topology.Transfer, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				out = append(out, topology.Transfer{Src: s, Dst: d})
			}
		}
	}
	return out
}
