package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/topology"
)

func TestBuildValidation(t *testing.T) {
	h := topology.MustNew(3)
	if _, err := Build(h, []topology.Transfer{{Src: 0, Dst: 9}}); err == nil {
		t.Error("out-of-cube transfer must fail")
	}
}

func TestBuildDropsSelfTransfers(t *testing.T) {
	h := topology.MustNew(2)
	s, err := Build(h, []topology.Transfer{{Src: 1, Dst: 1}, {Src: 0, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTransfers() != 1 {
		t.Errorf("transfers = %d, want 1", s.NumTransfers())
	}
	if err := s.Verify([]topology.Transfer{{Src: 1, Dst: 1}, {Src: 0, Dst: 3}}); err != nil {
		t.Error(err)
	}
}

func TestEmptySchedule(t *testing.T) {
	h := topology.MustNew(3)
	s, err := Build(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 0 || s.Model(model.IPSC860(), 10) != 0 {
		t.Error("empty schedule must be free")
	}
	if err := s.Verify(nil); err != nil {
		t.Error(err)
	}
}

func TestCompleteGraphScheduled(t *testing.T) {
	for d := 1; d <= 5; d++ {
		h := topology.MustNew(d)
		req := CompleteGraph(h)
		s, err := Build(h, req)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(req); err != nil {
			t.Errorf("d=%d: %v", d, err)
		}
		n := h.Nodes()
		// Lower bound: n−1 steps (each node must receive n−1 messages,
		// one per step). Greedy should stay within a reasonable factor.
		if s.NumSteps() < n-1 {
			t.Errorf("d=%d: %d steps below lower bound %d", d, s.NumSteps(), n-1)
		}
		if s.NumSteps() > 3*(n-1) {
			t.Errorf("d=%d: greedy used %d steps (> 3(n−1) = %d)", d, s.NumSteps(), 3*(n-1))
		}
		if s.NumTransfers() != n*(n-1) {
			t.Errorf("d=%d: scheduled %d transfers", d, s.NumTransfers())
		}
	}
}

// The XOR schedule is the specialist: the generalized greedy scheduler
// must not beat it on the complete graph (it is a correctness baseline,
// not an optimality claim), and both must verify.
func TestXORBeatsGreedyOnCompleteGraph(t *testing.T) {
	d := 4
	h := topology.MustNew(d)
	req := CompleteGraph(h)
	greedy, err := Build(h, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Verify(req); err != nil {
		t.Fatal(err)
	}
	xorSteps := h.Nodes() - 1
	if greedy.NumSteps() < xorSteps {
		t.Errorf("greedy %d steps beats XOR %d — optimality theory says impossible",
			greedy.NumSteps(), xorSteps)
	}
	t.Logf("d=%d complete graph: greedy %d steps vs XOR %d", d, greedy.NumSteps(), xorSteps)
}

func TestPermutationRequirement(t *testing.T) {
	// A random permutation: one-port allows it to finish in few steps.
	h := topology.MustNew(5)
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(32)
	var req []topology.Transfer
	for s, d := range perm {
		req = append(req, topology.Transfer{Src: s, Dst: d})
	}
	sch, err := Build(h, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Verify(req); err != nil {
		t.Fatal(err)
	}
	if sch.NumSteps() > 10 {
		t.Errorf("permutation took %d steps", sch.NumSteps())
	}
}

func TestRandomRequirementsQuick(t *testing.T) {
	f := func(seed int64, dRaw, kRaw uint8) bool {
		d := int(dRaw)%4 + 1
		h := topology.MustNew(d)
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw)%50 + 1
		req := make([]topology.Transfer, k)
		for i := range req {
			req[i] = topology.Transfer{
				Src: rng.Intn(h.Nodes()),
				Dst: rng.Intn(h.Nodes()),
			}
		}
		s, err := Build(h, req)
		if err != nil {
			return false
		}
		return s.Verify(req) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateTransfersKept(t *testing.T) {
	// The requirement is a multiset: the same pair twice must be served
	// twice (necessarily in different steps).
	h := topology.MustNew(2)
	req := []topology.Transfer{{Src: 0, Dst: 3}, {Src: 0, Dst: 3}}
	s, err := Build(h, req)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTransfers() != 2 || s.NumSteps() != 2 {
		t.Errorf("steps=%d transfers=%d, want 2/2", s.NumSteps(), s.NumTransfers())
	}
	if err := s.Verify(req); err != nil {
		t.Error(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	h := topology.MustNew(4)
	req := CompleteGraph(h)
	// Shuffle the input; the canonical sort inside Build must produce
	// the same schedule.
	shuffled := append([]topology.Transfer(nil), req...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, err := Build(h, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(h, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSteps() != b.NumSteps() {
		t.Fatalf("nondeterministic: %d vs %d steps", a.NumSteps(), b.NumSteps())
	}
	for k := range a.Steps {
		if len(a.Steps[k]) != len(b.Steps[k]) {
			t.Fatalf("step %d sizes differ", k)
		}
		for i := range a.Steps[k] {
			if a.Steps[k][i] != b.Steps[k][i] {
				t.Fatalf("step %d transfer %d differs", k, i)
			}
		}
	}
}

func TestSimulateAgainstModel(t *testing.T) {
	// With pre-posted FORCED receives and per-step barriers, the
	// simulated time must be at least the model (barrier costs are
	// extra) and must not drop messages nor stall on contention.
	h := topology.MustNew(3)
	rng := rand.New(rand.NewSource(17))
	var req []topology.Transfer
	for i := 0; i < 20; i++ {
		req = append(req, topology.Transfer{Src: rng.Intn(8), Dst: rng.Intn(8)})
	}
	s, err := Build(h, req)
	if err != nil {
		t.Fatal(err)
	}
	prm := model.IPSC860Raw()
	res, err := s.Simulate(prm, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedForced != 0 {
		t.Errorf("dropped %d FORCED messages", res.DroppedForced)
	}
	if res.ContentionStall != 0 {
		t.Errorf("contention stall %v in a verified schedule", res.ContentionStall)
	}
	if res.Makespan < s.Model(prm, 64)-1e-6 {
		t.Errorf("simulated %v below model %v", res.Makespan, s.Model(prm, 64))
	}
}

func TestModelMonotoneInMessageSize(t *testing.T) {
	h := topology.MustNew(3)
	s, err := Build(h, CompleteGraph(h))
	if err != nil {
		t.Fatal(err)
	}
	prm := model.IPSC860()
	if s.Model(prm, 10) >= s.Model(prm, 100) {
		t.Error("model must grow with message size")
	}
}

// The greedy scheduler must pack and verify schedules on non-hypercube
// topologies end-to-end, including simulation.
func TestBuildOnTorus(t *testing.T) {
	net := topology.MustParseSpec("torus-3x3")
	req := CompleteGraph(net)
	s, err := Build(net, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(req); err != nil {
		t.Fatalf("torus schedule fails verification: %v", err)
	}
	res, err := s.Simulate(model.IPSC860(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if got := s.Model(model.IPSC860(), 16); got <= 0 {
		t.Error("non-positive model time")
	}
}

// The exact solver must agree with the one-port lower bound on a small
// mesh instance.
func TestBuildExactOnMesh(t *testing.T) {
	net := topology.MustParseSpec("mesh-2x2")
	req := []topology.Transfer{{Src: 0, Dst: 3}, {Src: 3, Dst: 0}, {Src: 1, Dst: 2}}
	s, err := BuildExact(net, req, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(req); err != nil {
		t.Fatal(err)
	}
}
