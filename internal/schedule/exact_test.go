package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestBuildExactValidation(t *testing.T) {
	h := topology.MustNew(3)
	if _, err := BuildExact(h, []topology.Transfer{{Src: 0, Dst: 99}}, 10); err == nil {
		t.Error("out-of-cube must fail")
	}
	big := make([]topology.Transfer, 20)
	for i := range big {
		big[i] = topology.Transfer{Src: i % 8, Dst: (i + 1) % 8}
	}
	if _, err := BuildExact(h, big, 10); err == nil {
		t.Error("transfer cap must be enforced")
	}
	s, err := BuildExact(h, nil, 10)
	if err != nil || s.NumSteps() != 0 {
		t.Errorf("empty exact schedule: %v %v", s, err)
	}
}

func TestBuildExactOptimalOnKnownCases(t *testing.T) {
	h := topology.MustNew(2)
	// Two transfers sharing the directed link 1→3 need exactly 2 steps.
	req := []topology.Transfer{{Src: 0, Dst: 3}, {Src: 1, Dst: 3}}
	s, err := BuildExact(h, req, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(req); err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 2 {
		t.Errorf("steps = %d, want 2", s.NumSteps())
	}
	// Two edge-disjoint transfers need exactly 1 step.
	req = []topology.Transfer{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	s, err = BuildExact(h, req, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 1 {
		t.Errorf("disjoint pair needs 1 step, got %d", s.NumSteps())
	}
}

// On the complete graph of a 1-cube and 2-cube, the exact solver must
// find the XOR schedule's optimum (n−1 steps).
func TestBuildExactCompleteGraphSmall(t *testing.T) {
	for d := 1; d <= 2; d++ {
		h := topology.MustNew(d)
		req := CompleteGraph(h)
		s, err := BuildExact(h, req, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(req); err != nil {
			t.Fatal(err)
		}
		if s.NumSteps() != h.Nodes()-1 {
			t.Errorf("d=%d: exact %d steps, optimum %d", d, s.NumSteps(), h.Nodes()-1)
		}
	}
}

// The exact solution never uses more steps than greedy, and greedy stays
// within 2× of exact on random small instances — quantifying the greedy
// gap on the §9 open problem.
func TestGreedyWithinTwoOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		d := rng.Intn(2) + 2
		h := topology.MustNew(d)
		k := rng.Intn(8) + 2
		req := make([]topology.Transfer, k)
		for i := range req {
			req[i] = topology.Transfer{Src: rng.Intn(h.Nodes()), Dst: rng.Intn(h.Nodes())}
		}
		exact, err := BuildExact(h, req, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := exact.Verify(req); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		greedy, err := Build(h, req)
		if err != nil {
			t.Fatal(err)
		}
		if exact.NumSteps() > greedy.NumSteps() {
			t.Errorf("trial %d: exact %d > greedy %d", trial, exact.NumSteps(), greedy.NumSteps())
		}
		if greedy.NumSteps() > 2*exact.NumSteps() {
			t.Errorf("trial %d: greedy %d > 2×exact %d", trial,
				greedy.NumSteps(), exact.NumSteps())
		}
	}
}

func TestLowerBoundSanity(t *testing.T) {
	h := topology.MustNew(3)
	// Node 0 sends 3 messages: lower bound 3.
	req := []topology.Transfer{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 4}}
	if lb := lowerBound(h, req); lb != 3 {
		t.Errorf("lower bound = %d, want 3", lb)
	}
	s, err := BuildExact(h, req, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 3 {
		t.Errorf("one-port source needs 3 steps, got %d", s.NumSteps())
	}
}
