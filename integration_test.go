package repro

// Cross-layer integration tests: these exercise the full stack the way
// the cmd tools and examples do — optimizer → plan → simulator → runtime
// — and pin the end-to-end numbers the reproduction stands on.

import (
	"math"
	"testing"
	"time"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// TestPaperHeadlineEndToEnd pins the flagship numbers: on the modeled
// 128-node iPSC-860 at 40-byte blocks, the auto-tuned multiphase exchange
// picks {3,4} and beats both classical algorithms by roughly 2×, with the
// data movement verified by real goroutines.
func TestPaperHeadlineEndToEnd(t *testing.T) {
	sys, err := core.NewSystem(7, model.IPSC860())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.VerifiedExchange(40, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partition.Canonical().Equal(partition.Partition{4, 3}) {
		t.Errorf("picked %v, want {3,4}", res.Partition)
	}
	if !res.DataVerified {
		t.Error("data must be verified")
	}
	se, err := sys.ExchangeWith(40, partition.Partition{1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	ocs, err := sys.ExchangeWith(40, partition.Partition{7})
	if err != nil {
		t.Fatal(err)
	}
	if se.SimulatedMicros/res.SimulatedMicros < 1.9 {
		t.Errorf("vs SE: %.2f×, want ≈2×", se.SimulatedMicros/res.SimulatedMicros)
	}
	if ocs.SimulatedMicros/res.SimulatedMicros < 1.9 {
		t.Errorf("vs OCS: %.2f×, want ≈2×", ocs.SimulatedMicros/res.SimulatedMicros)
	}
	// Absolute scale: paper measures 16000 µs for {3,4}; the model lands
	// within a few percent of that.
	if res.SimulatedMicros < 14000 || res.SimulatedMicros > 18000 {
		t.Errorf("{3,4} time %v µs, paper reports ≈16000", res.SimulatedMicros)
	}
}

// TestOptimizerSimulatorRuntimeAgree runs the optimizer's pick at several
// block sizes through the simulator and the goroutine runtime for each
// paper dimension.
func TestOptimizerSimulatorRuntimeAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, d := range []int{5, 6, 7} {
		sys, err := core.NewSystem(d, model.IPSC860())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{8, 80, 320} {
			res, err := sys.VerifiedExchange(m, 2*time.Minute)
			if err != nil {
				t.Fatalf("d=%d m=%d: %v", d, m, err)
			}
			if math.Abs(res.SimulatedMicros-res.PredictedMicros) > 1e-6 {
				t.Errorf("d=%d m=%d: sim %v != pred %v",
					d, m, res.SimulatedMicros, res.PredictedMicros)
			}
		}
	}
}

// TestFigureCurvesConsistentWithOptimizer cross-checks the experiment
// generator against the optimizer: at every swept block size, the best of
// the figure's plotted curves must be the optimizer's winning time
// whenever the optimizer's pick is one of the plotted partitions (the
// hull members are plotted, so it always is).
func TestFigureCurvesConsistentWithOptimizer(t *testing.T) {
	prm := model.IPSC860()
	opt := optimize.New(prm)
	for _, d := range []int{5, 6} {
		fig, err := experiments.Figure(d)
		if err != nil {
			t.Fatal(err)
		}
		sweep := experiments.BlockSweep()
		for i, m := range sweep {
			best := math.Inf(1)
			for _, c := range fig.Curves {
				if c.Y[i] < best {
					best = c.Y[i]
				}
			}
			choice, err := opt.Best(d, m)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(best-choice.TimeMicro) > 1e-6 {
				t.Errorf("d=%d m=%d: figure best %v, optimizer %v",
					d, m, best, choice.TimeMicro)
			}
		}
	}
}

// TestLargeCubeSmoke simulates the single-phase OCS on larger cubes than
// the paper had hardware for (up to 1024 nodes), exercising the simulator
// at scale; the analytic equality must still hold exactly.
func TestLargeCubeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prm := model.IPSC860()
	for _, d := range []int{8, 9, 10} {
		plan, err := exchange.NewOptimalPlan(d, 16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Simulate(simnet.New(topology.MustNew(d), prm))
		if err != nil {
			t.Fatal(err)
		}
		want := prm.OptimalCircuitSwitched(16, d)
		if math.Abs(res.Makespan-want) > 1e-4 {
			t.Errorf("d=%d: sim %v, model %v", d, res.Makespan, want)
		}
		if res.ContentionStall != 0 {
			t.Errorf("d=%d: stall %v", d, res.ContentionStall)
		}
	}
}

// TestMillionNodePlanning exercises the §6 claim directly: planning for a
// million-node hypercube (d=20) means enumerating only 627 candidates,
// which must complete quickly.
func TestMillionNodePlanning(t *testing.T) {
	prm := model.IPSC860()
	opt := optimize.New(prm)
	start := time.Now()
	c, err := opt.Best(20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("enumeration took %v — the paper calls this trivial", elapsed)
	}
	if !c.Part.Canonical().IsValid(20) {
		t.Errorf("invalid plan %v", c.Part)
	}
	if len(c.Part) == 1 || len(c.Part) == 20 {
		t.Logf("note: degenerate partition %v optimal at m=64 on d=20", c.Part)
	}
}

// TestCollectivesNeverBeatModelLowerBound sanity-checks the §9 patterns
// end to end against the exchange on one shared network.
func TestCollectivesUpperBoundEndToEnd(t *testing.T) {
	prm := model.IPSC860()
	sys, err := core.NewSystem(6, prm)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := sys.CompleteExchange(64)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(topology.MustNew(6), prm)
	for _, k := range []collectives.Kind{
		collectives.Broadcast, collectives.Scatter,
		collectives.Gather, collectives.AllGather,
	} {
		res, err := collectives.Simulate(k, net, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > ce.SimulatedMicros {
			t.Errorf("%v (%v µs) exceeds complete exchange (%v µs)",
				k, res.Makespan, ce.SimulatedMicros)
		}
	}
}
