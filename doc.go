// Package repro reproduces Bokhari's "Multiphase Complete Exchange on a
// Circuit Switched Hypercube" (ICPP 1991, ICASE Report 91-5): the unified
// multiphase all-to-all personalized communication algorithm for
// circuit-switched hypercubes, together with the machine it needs — a
// calibrated discrete-event simulator of the Intel iPSC-860's network —
// and a goroutine runtime that executes the same algorithms with real
// payloads.
//
// Every algorithm is written once against the node-level fabric
// interface (internal/fabric) and runs unchanged on both backends: the
// goroutine runtime moves real bytes, the simulated fabric moves the
// same bytes while costing the schedule in virtual time. Pure costing
// takes a third, faster route: a trace compiler (internal/exchange,
// internal/collectives) lowers plans directly to per-node simulator
// programs — op-for-op the programs a live simulated-fabric run records —
// and replays them with no goroutines or payload bytes, which is what the
// optimizer enumeration and the figure sweeps use.
//
// The network shape is a pluggable parameter, not a type: the whole
// stack — routing, link contention, the replay core, the exchange
// planner, the optimizer and the serving tier — is built on
// topology.Network, with three implementations: the binary Hypercube
// (radix-2 bit-trick fast paths preserved), and mixed-radix Torus and
// Mesh machines ("torus-4x4x4", "mesh-8x8"). The multiphase family
// generalizes accordingly: a plan groups the topology's dimensions into
// consecutive phases; all-radix-2 fields keep the paper's pairwise XOR
// schedule (the hypercube is exactly the all-2 special case), while
// mixed-radix fields run cyclic shifts within their sub-blocks, with
// the analytic model (model.MultiphaseOn) collapsing to eq. (3) on the
// hypercube.
//
// The optimizer (internal/optimize) keeps that enumeration interactive
// at scale: per-(field, m) phase costs and compiled trace fragments are
// memoized across candidates and block-size sweeps, an admissible
// analytic lower bound (model.PhaseLowerBoundOn) prunes provable losers
// branch-and-bound style, and surviving candidates are costed in
// parallel on a bounded worker pool with deterministic tie-breaking —
// bit-identical results to exhaustive serial enumeration, with
// evaluated/pruned/memo-hit counters surfaced through Optimizer.Stats
// and the daemon's /metrics.
//
// On top of the optimizer sits the serving subsystem: internal/plancache
// collapses the unbounded block-size axis onto hull-of-optimality
// segments in a sharded LRU cache with JSON snapshot/restore,
// internal/service exposes it as an HTTP JSON API (/v1/plan, /v1/cost,
// /v1/hull, /v1/batch, /v1/faults, /healthz, /metrics), and cmd/pland is
// the daemon that serves auto-tuned exchange plans to the network — the
// paper's "compute once, store for repeated future use" (§6) as a
// product.
//
// The stack is fault-aware end to end: topology.Overlay wraps any
// Network in a Degraded view (dead links, dead nodes, per-link slowdown
// factors) with detour routing and a canonical health digest; the cost
// model, optimizer, simulator (simnet.FaultPlan injects deterministic
// timed faults) and plan cache all plan around the damage, and the
// daemon degrades gracefully — POST /v1/faults changes a fabric's fault
// state, and when re-planning under faults is impossible the
// last-known-good plan is served flagged degraded while a bounded-
// backoff background rebuild retries. A zero-fault overlay is exactly
// transparent: bit-identical plans, costs, and cache keys.
//
// The serving tier also scales out: internal/cluster turns N pland
// replicas into one logical cache. A consistent-hash ring with virtual
// nodes assigns every cache line to an owner replica; a non-owner's
// miss fetches the built line from its owner over /v1/peer/line —
// per-attempt deadlines, bounded retries with backoff and jitter, and
// per-peer circuit breakers guarding every hop — and falls back to a
// local singleflight build when the owner is dead or slow, so a peer
// failure costs latency, never an error. Replicas probe each other's
// /healthz, warm-fetch their owned lines at startup, gate /readyz on
// that warm-up, forward fault updates fleet-wide, and shed local
// builds beyond a bound with 503s; cmd/loadgen is the fleet's paced
// measuring stick. Without -peers the daemon is bit-identical to the
// standalone build.
//
// The fleet watches itself through internal/obs, a zero-dependency
// observability layer: every request carries a correlation ID
// (X-Pland-Request-Id, propagated across peer hops) and records a span
// tree — handler, cache outcome, build, optimizer, compiled-trace
// replay, peer fetch — into a bounded ring served at /debug/traces
// (JSON or Chrome trace_event, the same exporter that dumps simnet
// timelines via mpx/figures -trace-out). Latencies feed fixed
// log-bucket histograms with derived p50/p90/p99 per endpoint and per
// stage, exposed on the JSON /metrics and as Prometheus text at
// /metrics?format=prometheus; pland logs structured records (log/slog)
// and opts into pprof/expvar on a separate -debug-addr listener.
//
// Layout:
//
//	internal/...   the library (see README.md for the package map)
//	cmd/...        mpx, hull, partitions, figures, calibrate, pland, loadgen
//	examples/...   runnable demonstrations
//
// The benchmark harness in this package (bench_test.go) regenerates every
// table and figure of the paper; integration_test.go pins the headline
// end-to-end results. README.md carries the system inventory and the
// paper-vs-reproduction record.
package repro
