// Package repro's benchmark harness regenerates every table and figure of
// the paper (one benchmark per artifact, E1–E8 as indexed in internal/experiments)
// and adds ablation benches for the design choices the paper discusses
// (pairwise sync, FORCED vs UNFORCED, shuffle cost ρ, schedule choice).
//
// Simulated virtual-time results are attached to each benchmark through
// b.ReportMetric as "sim_µs" (virtual microseconds on the modeled
// iPSC-860), so `go test -bench . -benchmem` prints the paper-comparable
// numbers next to the wall-clock cost of computing them.
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/collectives"
	"repro/internal/comm"
	"repro/internal/exchange"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/partition"
	"repro/internal/plancache"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// simulate costs one exchange plan on a fresh simulated network via the
// trace-compiled path (bit-identical to the goroutine-backed Simulate,
// without moving payloads; BenchmarkCostingGoroutine keeps the old path
// honest).
func simulate(b *testing.B, d, m int, D partition.Partition, prm model.Params) simnet.Result {
	b.Helper()
	plan, err := exchange.NewPlan(d, m, D)
	if err != nil {
		b.Fatal(err)
	}
	res, err := plan.Cost(simnet.New(topology.MustNew(d), prm))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkE1_Crossover regenerates the §4.3 crossover example: SE vs OCS
// on the hypothetical d=6 machine across the 0–100B sweep. Reported
// metric: the crossover block size (paper: 30 bytes).
func BenchmarkE1_Crossover(b *testing.B) {
	prm := model.Hypothetical()
	var crossover float64
	for i := 0; i < b.N; i++ {
		crossover = prm.CrossoverBlockSize(6)
		for m := 0; m <= 100; m += 4 {
			_ = prm.StandardExchange(m, 6)
			_ = prm.OptimalCircuitSwitched(m, 6)
		}
	}
	b.ReportMetric(crossover, "crossover_B")
}

// BenchmarkE2_TwoPhaseExample regenerates the §5.1 worked example: d=6,
// m=24, partition {2,4} on the hypothetical machine, simulated end to end.
// Paper arithmetic: 10944 µs (with its 160B phase-2 block); consistent
// formula: 9984 µs. Reported metric: simulated total.
func BenchmarkE2_TwoPhaseExample(b *testing.B) {
	prm := model.Hypothetical()
	var last float64
	for i := 0; i < b.N; i++ {
		res := simulate(b, 6, 24, partition.Partition{2, 4}, prm)
		last = res.Makespan
	}
	b.ReportMetric(last, "sim_µs")
}

// BenchmarkE3_PartitionTable regenerates the §6 table of p(d) for
// d = 1..20 by both counting methods. Reported metric: p(20) (paper: 627).
func BenchmarkE3_PartitionTable(b *testing.B) {
	var p20 int
	for i := 0; i < b.N; i++ {
		for d := 1; d <= 20; d++ {
			if partition.Count(d) != partition.CountEuler(d) {
				b.Fatal("counting methods disagree")
			}
		}
		p20 = partition.Count(20)
	}
	b.ReportMetric(float64(p20), "p(20)")
}

// benchFigure simulates every curve of one paper figure across the block
// sweep and reports the simulated time of the multiphase winner at 40B.
func benchFigure(b *testing.B, d int) {
	prm := model.IPSC860()
	curves := experiments.FigureCurves(d)
	sweep := experiments.BlockSweep()
	var at40 float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, D := range curves {
			for _, m := range sweep {
				res := simulate(b, d, m, D, prm)
				if m == 40 && len(D) == 2 {
					at40 = res.Makespan
				}
			}
		}
	}
	b.ReportMetric(at40, "mp_at_40B_µs")
}

// BenchmarkE4_Figure4_D5 regenerates Figure 4 (32-node iPSC-860):
// curves {1,1,1,1,1}, {2,3}, {5} over 0–400B.
func BenchmarkE4_Figure4_D5(b *testing.B) { benchFigure(b, 5) }

// BenchmarkE5_Figure5_D6 regenerates Figure 5 (64-node iPSC-860):
// curves {1,...}, {2,2,2}, {3,3}, {6} over 0–400B.
func BenchmarkE5_Figure5_D6(b *testing.B) { benchFigure(b, 6) }

// BenchmarkE6_Figure6_D7 regenerates Figure 6 (128-node iPSC-860):
// curves {1,...}, {2,2,3}, {3,4}, {7} over 0–400B. The 40B metric is the
// paper's headline: {3,4} ≈ 16000 µs vs 37000 µs for both classics.
func BenchmarkE6_Figure6_D7(b *testing.B) { benchFigure(b, 7) }

// BenchmarkE7_SyncOverhead regenerates the §7.2/§7.4 synchronization
// accounting: one 100B exchange under synced/serialized/ideal modes.
// Reported metric: synced-exchange simulated time (λ0+δ + λ+τ·100+δ).
func BenchmarkE7_SyncOverhead(b *testing.B) {
	var synced float64
	for i := 0; i < b.N; i++ {
		for _, prm := range []model.Params{
			model.IPSC860(), model.IPSC860NoSync(), model.IPSC860Raw(),
		} {
			net := simnet.New(topology.MustNew(1), prm)
			res, err := net.Run([]simnet.Program{
				{simnet.Exchange(1, 100)},
				{simnet.Exchange(0, 100)},
			})
			if err != nil {
				b.Fatal(err)
			}
			if prm.Exchange == model.ExchangeSynced {
				synced = res.Makespan
			}
		}
	}
	b.ReportMetric(synced, "sim_µs")
}

// BenchmarkE8_ContentionFree verifies (and times) the schedule-analysis
// claim: every step of every multiphase plan for d ≤ 6 is edge-contention-
// free under e-cube routing. Reported metric: steps analyzed.
func BenchmarkE8_ContentionFree(b *testing.B) {
	var steps int
	for i := 0; i < b.N; i++ {
		steps = 0
		for d := 1; d <= 6; d++ {
			h := topology.MustNew(d)
			for _, D := range partition.All(d) {
				plan, err := exchange.NewPlan(d, 1, D)
				if err != nil {
					b.Fatal(err)
				}
				for _, step := range plan.Steps() {
					r, err := h.AnalyzeStep(step)
					if err != nil {
						b.Fatal(err)
					}
					if !r.EdgeContentionFree() {
						b.Fatal("contended step in multiphase plan")
					}
					steps++
				}
			}
		}
	}
	b.ReportMetric(float64(steps), "steps")
}

// BenchmarkAblation_PairwiseSync compares the full d=6, 40B exchange with
// and without pairwise synchronization (§7.2: sync always wins on the
// iPSC-860). Reported metric: serialized/synced time ratio (>1).
func BenchmarkAblation_PairwiseSync(b *testing.B) {
	D := partition.Partition{3, 3}
	var ratio float64
	for i := 0; i < b.N; i++ {
		synced := simulate(b, 6, 40, D, model.IPSC860())
		serial := simulate(b, 6, 40, D, model.IPSC860NoSync())
		ratio = serial.Makespan / synced.Makespan
	}
	b.ReportMetric(ratio, "serial/synced")
}

// BenchmarkAblation_RhoZero re-derives the d=7 hull with free shuffles
// (ρ=0), the paper's §7.4 remark that better codegen would shrink ρ but
// "will not affect our overall approach". Reported metric: number of hull
// faces with ρ=0 (multiphase partitions must still appear).
func BenchmarkAblation_RhoZero(b *testing.B) {
	prm := model.IPSC860()
	prm.Rho = 0
	var faces int
	for i := 0; i < b.N; i++ {
		hull := prm.Hull(7, 0, 400, 8, false)
		parts := model.HullPartitions(hull)
		multiphase := false
		for _, D := range parts {
			if len(D) > 1 {
				multiphase = true
			}
		}
		if !multiphase {
			b.Fatal("with rho=0 multiphase should still win somewhere")
		}
		faces = len(parts)
	}
	b.ReportMetric(float64(faces), "hull_faces")
}

// BenchmarkAblation_ForcedVsUnforced compares a 400B one-sided send under
// FORCED vs UNFORCED semantics (§7.1: UNFORCED pays a reserve-ack round
// trip above 100B). Reported metric: UNFORCED/FORCED time ratio.
func BenchmarkAblation_ForcedVsUnforced(b *testing.B) {
	prm := model.IPSC860Raw()
	net := simnet.New(topology.MustNew(2), prm)
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(t simnet.MsgType) float64 {
			res, err := net.Run([]simnet.Program{
				{simnet.PostRecv(1), simnet.Send(1, 400, t), simnet.WaitRecv(1)},
				{simnet.PostRecv(0), simnet.Send(0, 400, t), simnet.WaitRecv(0)},
				nil, nil,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Makespan
		}
		ratio = run(simnet.Unforced) / run(simnet.Forced)
	}
	b.ReportMetric(ratio, "unforced/forced")
}

// BenchmarkAblation_NaiveSchedule quantifies why scheduling matters: the
// naive all-into-one complete exchange (every node sends block i to node i
// at step i) against the XOR schedule, both as raw sends on d=5. Reported
// metric: naive/XOR simulated time ratio (edge contention serializes the
// naive schedule).
func BenchmarkAblation_NaiveSchedule(b *testing.B) {
	prm := model.IPSC860Raw()
	h := topology.MustNew(5)
	n := h.Nodes()
	m := 64
	var ratio float64
	for i := 0; i < b.N; i++ {
		// Naive: step i, everyone sends to node i.
		naive := make([]simnet.Program, n)
		for p := 0; p < n; p++ {
			var prog simnet.Program
			for q := 0; q < n; q++ {
				if q != p {
					prog = append(prog, simnet.PostRecv(q))
				}
			}
			prog = append(prog, simnet.Barrier())
			for step := 0; step < n; step++ {
				if step != p {
					prog = append(prog, simnet.Send(step, m, simnet.Forced))
				}
			}
			for q := 0; q < n; q++ {
				if q != p {
					prog = append(prog, simnet.WaitRecv(q))
				}
			}
			naive[p] = prog
		}
		net := simnet.New(h, prm)
		naiveRes, err := net.Run(naive)
		if err != nil {
			b.Fatal(err)
		}
		if naiveRes.ContentionStall == 0 {
			b.Fatal("naive schedule should stall on contention")
		}
		xor := simulate(b, 5, m, partition.Partition{5}, prm)
		ratio = naiveRes.Makespan / xor.Makespan
	}
	b.ReportMetric(ratio, "naive/xor")
}

// BenchmarkOptimizerEnumeration times the §6 enumeration: best partition
// for d=10 (p(10)=42 candidates) at one block size.
func BenchmarkOptimizerEnumeration(b *testing.B) {
	prm := model.IPSC860()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := optimize.New(prm) // fresh cache each iteration
		if _, err := opt.Best(10, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateOCS_D7 times one full 128-node Optimal Circuit-Switched
// compiled replay (127 steps × 128 nodes), the heaviest single simulation
// in the figure sweeps.
func BenchmarkSimulateOCS_D7(b *testing.B) {
	prm := model.IPSC860()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = simulate(b, 7, 160, partition.Partition{7}, prm)
	}
}

// costingCases is the benchmark pair's workload: the d=7 figure-sweep
// case (every Figure-6 curve at the 40B headline block) and the fully
// simulated optimizer enumeration at d=10, m=64 (p(10)=42 candidates).
// BenchmarkCostingCompiled and BenchmarkCostingGoroutine run the same
// work on the trace-compiled and the 2^d-goroutine costing paths; the
// results are bit-identical, the costs are not.
func benchCosting(b *testing.B, costing optimize.Costing) {
	prm := model.IPSC860()
	b.Run("figure6_d7_m40", func(b *testing.B) {
		b.ReportAllocs()
		var last float64
		for i := 0; i < b.N; i++ {
			for _, D := range experiments.FigureCurves(7) {
				plan, err := exchange.NewPlan(7, 40, D)
				if err != nil {
					b.Fatal(err)
				}
				net := simnet.New(topology.MustNew(7), prm)
				var res simnet.Result
				if costing == optimize.CostingGoroutine {
					res, err = plan.Simulate(net)
				} else {
					res, err = plan.Cost(net)
				}
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan
			}
		}
		b.ReportMetric(last, "sim_µs")
	})
	b.Run("best_d10_m64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opt := optimize.NewSimulated(prm) // fresh cache each iteration
			opt.SetCosting(costing)
			if _, err := opt.Best(10, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCostingCompiled times the trace-compiled costing path: plans
// lowered straight to per-node simnet programs and replayed with no
// goroutines, no mailboxes and no payload bytes.
func BenchmarkCostingCompiled(b *testing.B) { benchCosting(b, optimize.CostingCompiled) }

// BenchmarkCostingGoroutine times the same workload on the goroutine
// path (2^d node goroutines moving and verifying real payloads, then
// replaying the recorded traces) — the baseline the compiled path is
// required to beat by ≥5× with ≥10× fewer allocations.
func BenchmarkCostingGoroutine(b *testing.B) { benchCosting(b, optimize.CostingGoroutine) }

// BenchmarkRuntimeExchange_D5 times the real-data goroutine execution of
// the d=5 multiphase exchange (32 goroutines moving 16B blocks).
func BenchmarkRuntimeExchange_D5(b *testing.B) {
	plan, err := exchange.NewPlan(5, 16, partition.Partition{2, 3})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := plan.RunData(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllToAllFabric exercises the unified multiphase executor —
// one implementation, two backends — on the hot gather/exchange/scatter
// path: the auto-tuned d=6, 40-byte exchange on the runtime fabric (real
// goroutine data movement) and on the simnet fabric (data movement plus
// trace recording and discrete-event replay). The pair is the perf
// baseline for future backend work.
func BenchmarkAllToAllFabric(b *testing.B) {
	prm := model.IPSC860()
	plan, err := optimize.New(prm).Plan(6, 40)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("runtime", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fab, err := fabric.NewRuntime(plan.Nodes())
			if err != nil {
				b.Fatal(err)
			}
			if err := plan.RunOn(fab, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simnet", func(b *testing.B) {
		b.ReportAllocs()
		var sim float64
		for i := 0; i < b.N; i++ {
			fab := fabric.NewSim(simnet.New(topology.MustNew(plan.Dim()), prm))
			if err := plan.RunOn(fab, time.Minute); err != nil {
				b.Fatal(err)
			}
			res, err := fab.Result()
			if err != nil {
				b.Fatal(err)
			}
			sim = res.Makespan
		}
		b.ReportMetric(sim, "sim_µs")
	})
}

// BenchmarkPartitionIteration times the partition iterator over d=20
// (627 partitions), the enumeration cost the paper calls trivial.
func BenchmarkPartitionIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		it := partition.NewIterator(20)
		count := 0
		for D := it.Next(); D != nil; D = it.Next() {
			count++
		}
		if count != 627 {
			b.Fatalf("p(20) = %d", count)
		}
	}
}

// BenchmarkCollectives simulates the §9 collectives (broadcast, scatter,
// gather, allgather) on a 64-node cube at 64B and reports the allgather
// time — the all-to-all broadcast the paper names as the next target for
// multiphase treatment.
func BenchmarkCollectives(b *testing.B) {
	prm := model.IPSC860()
	net := simnet.New(topology.MustNew(6), prm)
	var ag float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range []collectives.Kind{
			collectives.Broadcast, collectives.Scatter,
			collectives.Gather, collectives.AllGather,
		} {
			res, err := collectives.Simulate(k, net, 64, 0)
			if err != nil {
				b.Fatal(err)
			}
			if k == collectives.AllGather {
				ag = res.Makespan
			}
		}
	}
	b.ReportMetric(ag, "allgather_µs")
}

// BenchmarkScheduleCompleteGraph times the §9 generalized scheduler on
// the complete-exchange requirement for d=5 and reports the step count
// (the XOR specialist needs 31).
func BenchmarkScheduleCompleteGraph(b *testing.B) {
	h := topology.MustNew(5)
	req := schedule.CompleteGraph(h)
	var steps int
	for i := 0; i < b.N; i++ {
		s, err := schedule.Build(h, req)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Verify(req); err != nil {
			b.Fatal(err)
		}
		steps = s.NumSteps()
	}
	b.ReportMetric(float64(steps), "steps")
}

// BenchmarkScheduleRandomGraph times the generalized scheduler on a random
// sparse requirement (the arbitrary-directed-graph case of §9).
func BenchmarkScheduleRandomGraph(b *testing.B) {
	h := topology.MustNew(6)
	rng := rand.New(rand.NewSource(5))
	req := make([]topology.Transfer, 300)
	for i := range req {
		req[i] = topology.Transfer{Src: rng.Intn(64), Dst: rng.Intn(64)}
	}
	for i := 0; i < b.N; i++ {
		s, err := schedule.Build(h, req)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Verify(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead measures the cost of timeline recording on the
// d=6 OCS simulation (off vs on is visible by comparing with
// BenchmarkSimulateOCS_D7).
func BenchmarkTraceOverhead(b *testing.B) {
	plan, err := exchange.NewPlan(6, 64, partition.Partition{6})
	if err != nil {
		b.Fatal(err)
	}
	net := simnet.New(topology.MustNew(6), model.IPSC860())
	net.SetTrace(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Simulate(net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuitHopLevel runs a full d=5 XOR exchange step set through
// the hop-level circuit simulator (header walks, partial-path holding)
// and reports the virtual completion time of the last step.
func BenchmarkCircuitHopLevel(b *testing.B) {
	prm := model.IPSC860Raw()
	h := topology.MustNew(5)
	net := circuit.New(h, prm, nil)
	var last float64
	for i := 0; i < b.N; i++ {
		for mask := 1; mask < h.Nodes(); mask++ {
			msgs := make([]circuit.Message, 0, h.Nodes())
			for p := 0; p < h.Nodes(); p++ {
				msgs = append(msgs, circuit.Message{Src: p, Dst: p ^ mask, Bytes: 64})
			}
			res, err := net.Run(msgs)
			if err != nil {
				b.Fatal(err)
			}
			if res.Deadlocked {
				b.Fatal("e-cube deadlocked")
			}
			last = res.Makespan
		}
	}
	b.ReportMetric(last, "laststep_µs")
}

// BenchmarkCommAllToAll times the user-facing communicator's auto-tuned
// AllToAll with real goroutine data movement on 32 ranks.
func BenchmarkCommAllToAll(b *testing.B) {
	c, err := comm.New(5, model.IPSC860())
	if err != nil {
		b.Fatal(err)
	}
	c.SetTimeout(time.Minute)
	n := c.Size()
	for i := 0; i < b.N; i++ {
		err := c.Run(func(r *comm.Rank) error {
			send := make([][]byte, n)
			for j := range send {
				send[j] = make([]byte, 40)
			}
			_, err := r.AllToAll(send)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheHit times the plan cache's hot path — a (machine,
// d, m) query answered from a resident hull line: shard lookup, binary
// search over segments, closed-form time for the exact block size.
func BenchmarkPlanCacheHit(b *testing.B) {
	pc := plancache.New(plancache.Config{})
	if _, err := pc.Get("ipsc860", 7, 40); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Get("ipsc860", 7, (i*37)%500); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := pc.Stats()
	if s.Misses != 1 {
		b.Fatalf("bench drove %d misses, want 1 (hits only)", s.Misses)
	}
	b.ReportMetric(float64(s.Hits)/float64(b.N), "hits/op")
}

// BenchmarkServePlan times one /v1/plan request end-to-end over a
// loopback HTTP connection against a warm cache — the serving tier's
// unit of work.
func BenchmarkServePlan(b *testing.B) {
	srv, err := service.New(service.Config{Cache: plancache.New(plancache.Config{})})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	warm := func(url string) {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	warm(ts.URL + "/v1/plan?machine=ipsc860&d=7&m=40")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm(fmt.Sprintf("%s/v1/plan?machine=ipsc860&d=7&m=%d", ts.URL, (i*37)%500))
	}
}

// BenchmarkCostingCompiledTorus is the non-hypercube datapoint of the
// perf trajectory: the same compiled-trace replay on a 64-node torus,
// exercising the generic (non-bit-trick) routing path of the simulator.
func BenchmarkCostingCompiledTorus(b *testing.B) {
	prm := model.IPSC860()
	topo := topology.MustParseSpec("torus-4x4x4")
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, G := range []partition.Partition{{3}, {2, 1}, {1, 1, 1}} {
			plan, err := exchange.NewPlanOn(topo, 40, G)
			if err != nil {
				b.Fatal(err)
			}
			res, err := plan.Cost(simnet.New(topo, prm))
			if err != nil {
				b.Fatal(err)
			}
			last = res.Makespan
		}
	}
	b.ReportMetric(last, "sim_µs")
}

// BenchmarkBestOnPruned times the memoized, branch-and-bound-pruned,
// parallel simulated enumeration from a cold optimizer. The d=16 case is
// the acceptance datapoint: the seed re-simulated all p(16)=231 candidate
// plans whole; the pruned path replays the fragments of a handful of
// survivors (evaluated/pruned/memo_hits metrics report the split — the
// candidate-replay reduction is evaluated vs evaluated+pruned).
func BenchmarkBestOnPruned(b *testing.B) {
	prm := model.IPSC860()
	for _, d := range []int{12, 16} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			b.ReportAllocs()
			var st optimize.Stats
			for i := 0; i < b.N; i++ {
				opt := optimize.NewSimulated(prm) // fresh caches: one cold enumeration per iteration
				if _, err := opt.Best(d, 4); err != nil {
					b.Fatal(err)
				}
				st = opt.Stats()
			}
			b.ReportMetric(float64(st.Evaluated), "evaluated")
			b.ReportMetric(float64(st.Pruned), "pruned")
			b.ReportMetric(float64(st.MemoHits), "memo_hits")
		})
	}
}

// BenchmarkBuildTableMemoized times a cold simulated hull sweep, the
// plancache line-build unit of work. Sweep points share phase fragments
// through the memo and warm-start each other's incumbent, so the sweep
// costs far less than points × one cold Best (the memo_hits metric is
// the reuse across the whole sweep).
func BenchmarkBuildTableMemoized(b *testing.B) {
	prm := model.IPSC860()
	b.ReportAllocs()
	var st optimize.Stats
	for i := 0; i < b.N; i++ {
		opt := optimize.NewSimulated(prm)
		if _, err := opt.BuildTable(10, 0, 256, 16); err != nil {
			b.Fatal(err)
		}
		st = opt.Stats()
	}
	b.ReportMetric(float64(st.Evaluated), "evaluated")
	b.ReportMetric(float64(st.Pruned), "pruned")
	b.ReportMetric(float64(st.MemoHits), "memo_hits")
}

// BenchmarkPlanCacheHitTorus pins the serving hot path under a topology
// key: a resident torus line must answer with the same O(1) lookup as
// the hypercube line.
func BenchmarkPlanCacheHitTorus(b *testing.B) {
	c := plancache.New(plancache.Config{SweepHi: 64})
	if _, err := c.GetOn("ipsc860", "torus-4x4x4", 40); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetOn("ipsc860", "torus-4x4x4", i&255); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReplayFragment replays one d=16 top-field fragment — the largest
// unit of work the optimizer's memoized costing runs — with the given
// event-engine shard count. The fragment's 256 sub-blocks are pairwise
// link-disjoint, so the sharded replay engages fully and must report the
// same sim_µs bit-for-bit as the serial one (the equivalence suite pins
// this; the benchmark pair exposes the wall-clock ratio).
func benchReplayFragment(b *testing.B, shards int) {
	prm := model.IPSC860()
	topo := topology.MustParseSpec("hypercube-16")
	plan, err := exchange.NewPlanOn(topo, 4, partition.Partition{8, 8})
	if err != nil {
		b.Fatal(err)
	}
	frag := plan.CompilePhase(0)
	b.ReportAllocs()
	b.ResetTimer()
	var last simnet.Result
	for i := 0; i < b.N; i++ {
		net := simnet.New(topo, prm)
		net.SetReplayShards(shards)
		res, err := net.RunSource(frag)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Makespan, "sim_µs")
	b.ReportMetric(float64(last.ReplayShards), "shards")
}

// BenchmarkReplaySerial and BenchmarkReplaySharded are the sharded-replay
// acceptance pair: identical work, one engine vs four link-disjoint
// shards. Compare their ns/op (and confirm identical sim_µs) across a
// run; on a ≥ 4-core machine the sharded replay should win by ~the
// shard count.
func BenchmarkReplaySerial(b *testing.B)  { benchReplayFragment(b, 1) }
func BenchmarkReplaySharded(b *testing.B) { benchReplayFragment(b, 4) }
