// Heat: the full workload the paper's transpose exists for — solving the
// 2-D heat equation with the Peaceman–Rachford ADI method ([5, 10] in the
// paper). Every time step does two implicit sweeps with a distributed
// transpose between them; the transpose is the multiphase complete
// exchange.
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	const (
		nProc = 8 // d = 3
		bs    = 4 // 32×32 interior grid
		nu    = 0.05
		dt    = 0.001
		steps = 20
	)
	side := nProc * bs
	h := 1.0 / float64(side+1)
	prm := model.IPSC860()

	// Initial condition: the fundamental mode sin(πx)sin(πy), which
	// decays as exp(−2π²νt) — an exact yardstick.
	grid, err := apps.NewBlockMatrix(nProc, bs, func(r, c int) float64 {
		x := float64(c+1) * h
		y := float64(r+1) * h
		return apps.HeatAnalytic(x, y, 0, nu)
	})
	if err != nil {
		log.Fatal(err)
	}

	// What does each transpose cost on the modeled machine?
	sys, err := core.NewSystem(3, prm)
	if err != nil {
		log.Fatal(err)
	}
	blockBytes := bs * bs * 8
	ex, err := sys.CompleteExchange(blockBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %d×%d on %d nodes; transpose = complete exchange of %dB blocks\n",
		side, side, nProc, blockBytes)
	fmt.Printf("optimizer picks %v per transpose: %.1f µs simulated; 2 transposes per step\n\n",
		ex.Partition, ex.SimulatedMicros)

	start := time.Now()
	if err := apps.ADIHeat(grid, prm, nu, dt, h, steps, time.Minute); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	tEnd := dt * steps
	var maxErr, maxVal float64
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			x := float64(c+1) * h
			y := float64(r+1) * h
			want := apps.HeatAnalytic(x, y, tEnd, nu)
			if e := math.Abs(grid.At(r, c) - want); e > maxErr {
				maxErr = e
			}
			if v := math.Abs(grid.At(r, c)); v > maxVal {
				maxVal = v
			}
		}
	}
	decay := math.Exp(-2 * math.Pi * math.Pi * nu * tEnd)
	fmt.Printf("after %d ADI steps (t = %.3f): %v wall clock, %d transposes\n",
		steps, tEnd, wall, 2*steps)
	fmt.Printf("peak amplitude %.6f (analytic decay factor %.6f)\n", maxVal, decay)
	fmt.Printf("max error vs analytic solution: %.2e\n", maxErr)
	if maxErr < 5e-3 {
		fmt.Println("solution tracks the analytic decay — solver verified")
	} else {
		fmt.Println("UNEXPECTED deviation from the analytic solution")
	}
}
