// Transpose: the ADI-style distributed matrix transpose of the paper's §3
// (Figure 2) on a 16-node machine — the workload that motivates the
// complete exchange. The -topology flag picks the interconnect the
// exchange is priced on (the data movement itself runs on the goroutine
// runtime and is shape-independent).
//
//	go run ./examples/transpose
//	go run ./examples/transpose -topology torus-4x4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/topology"
)

func main() {
	const (
		n  = 16 // processor count = block-grid side (d = 4)
		bs = 4  // block side: each processor owns a 4×64 strip
	)
	spec := flag.String("topology", "hypercube-4",
		"16-node interconnect to price the exchange on: hypercube-4, torus-4x4, mesh-4x4, torus-2x2x4, …")
	flag.Parse()
	topo, err := topology.ParseSpec(*spec)
	if err != nil {
		log.Fatal(err)
	}
	if topo.Nodes() != n {
		log.Fatalf("transpose runs on %d nodes; %s has %d", n, topo.Name(), topo.Nodes())
	}
	prm := model.IPSC860()

	// Build the matrix A(r,c) = 1000r + c, block-row mapped (Figure 2).
	mat, err := apps.NewBlockMatrix(n, bs, func(r, c int) float64 {
		return float64(1000*r + c)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %d×%d doubles in %d×%d blocks of %d×%d, one block row per node\n",
		n*bs, n*bs, n, n, bs, bs)

	// What will the exchange cost on the chosen interconnect? Each
	// block is bs²·8 bytes.
	sys, err := core.NewSystemOn(topo, prm)
	if err != nil {
		log.Fatal(err)
	}
	block := bs * bs * 8
	res, err := sys.CompleteExchange(block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exchange blocks: %dB each on %s; optimizer picked %v, %.1f µs simulated\n",
		block, topo.Name(), res.Partition, res.SimulatedMicros)

	// Run the real transpose on goroutines and spot-check.
	start := time.Now()
	if err := apps.Transpose(mat, prm, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transposed in %v wall clock (goroutine runtime)\n", time.Since(start))

	for _, rc := range [][2]int{{0, 1}, {5, 60}, {63, 0}} {
		r, c := rc[0], rc[1]
		got := mat.At(r, c)
		want := float64(1000*c + r)
		status := "ok"
		if got != want {
			status = "WRONG"
		}
		fmt.Printf("  A^T(%2d,%2d) = %8.0f (want %8.0f) %s\n", r, c, got, want, status)
	}

	// One full ADI iteration: row sweep, transpose, column sweep,
	// transpose back (Peaceman–Rachford / Douglas–Gunn skeleton).
	smooth := func(row []float64) {
		for i := 1; i < len(row)-1; i++ {
			row[i] = (row[i-1] + 2*row[i] + row[i+1]) / 4
		}
	}
	if err := apps.ADISweeps(mat, prm, smooth, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("one ADI iteration (row sweep → transpose → column sweep → transpose) done")
}
