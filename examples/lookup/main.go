// Lookup: the distributed table lookup of the paper's §3 (reference [12])
// on an 8-node hypercube: queries are routed to their owning shard by one
// complete exchange and answers return by a second.
//
//	go run ./examples/lookup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/model"
)

func main() {
	const procs = 8 // d = 3
	prm := model.IPSC860()
	rng := rand.New(rand.NewSource(42))

	// A table of squares, sharded by key mod 8.
	entries := make(map[uint64]uint64)
	for k := uint64(0); k < 4096; k++ {
		entries[k] = k * k
	}
	tbl, err := apps.NewLookupTable(procs, entries)
	if err != nil {
		log.Fatal(err)
	}
	for p, shard := range tbl.Shards {
		fmt.Printf("node %d holds %d entries\n", p, len(shard))
	}

	// Every node issues a random batch of queries, some of them misses.
	queries := make([][]uint64, procs)
	total := 0
	for p := range queries {
		batch := 50 + rng.Intn(100)
		for q := 0; q < batch; q++ {
			queries[p] = append(queries[p], uint64(rng.Intn(5000)))
		}
		total += batch
	}
	fmt.Printf("\nissuing %d queries across %d nodes...\n", total, procs)

	start := time.Now()
	answers, ok, err := tbl.BatchLookup(queries, prm, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answered in %v wall clock (2 complete exchanges)\n\n", time.Since(start))

	hits, misses, wrong := 0, 0, 0
	for p := range queries {
		for i, k := range queries[p] {
			want, exists := entries[k]
			switch {
			case ok[p][i] != exists:
				wrong++
			case exists && answers[p][i] != want:
				wrong++
			case exists:
				hits++
			default:
				misses++
			}
		}
	}
	fmt.Printf("hits: %d  misses: %d  wrong: %d\n", hits, misses, wrong)
	if wrong == 0 {
		fmt.Println("all answers verified against the reference table")
	}
}
