// Collectives: the other communication patterns the paper's conclusion
// (§9) discusses — broadcast, scatter, gather, allgather — next to the
// complete exchange, demonstrating that the exchange upper-bounds them
// all.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func main() {
	const d = 5 // 32 nodes
	const m = 64
	prm := model.IPSC860()
	net := simnet.New(topology.MustNew(d), prm)

	fmt.Printf("collectives on a %d-node simulated iPSC-860, %dB blocks\n\n", 1<<d, m)

	t := report.NewTable("simulated vs modeled time per collective",
		"pattern", "model(µs)", "simulated(µs)", "messages")
	for _, k := range []collectives.Kind{
		collectives.Broadcast, collectives.Scatter,
		collectives.Gather, collectives.AllGather,
	} {
		res, err := collectives.Simulate(k, net, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(k.String(), collectives.Model(k, prm, m, d), res.Makespan, res.Messages)
	}
	// The densest pattern for comparison: the auto-tuned complete
	// exchange (paper §3: its time upper-bounds every pattern).
	sys, err := core.NewSystem(d, prm)
	if err != nil {
		log.Fatal(err)
	}
	ce, err := sys.CompleteExchange(m)
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow(fmt.Sprintf("complete exchange %v", ce.Partition),
		ce.PredictedMicros, ce.SimulatedMicros, 1<<d*(1<<d-1))
	fmt.Println(t)

	// Verify all four patterns with real payloads on goroutines.
	fmt.Println("verifying data movement on the goroutine runtime...")
	for name, run := range map[string]func() error{
		"broadcast": func() error { return collectives.RunBroadcast(d, m, 3, time.Minute) },
		"scatter":   func() error { return collectives.RunScatter(d, m, 3, time.Minute) },
		"gather":    func() error { return collectives.RunGather(d, m, 3, time.Minute) },
		"allgather": func() error { return collectives.RunAllGather(d, m, time.Minute) },
	} {
		if err := run(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  %-9s ok (every block verified at every node)\n", name)
	}
}
