// Collectives: the other communication patterns the paper's conclusion
// (§9) discusses — broadcast, scatter, gather, allgather — next to the
// complete exchange, demonstrating that the exchange upper-bounds them
// all. Each collective has a single implementation written against the
// fabric interface; the same code is costed on the simulated machine and
// verified with real payloads on the goroutine runtime below.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func main() {
	const d = 5 // 32 nodes
	const m = 64
	prm := model.IPSC860()
	cube, err := topology.New(d)
	if err != nil {
		log.Fatal(err)
	}
	net := simnet.New(cube, prm)

	fmt.Printf("collectives on a %d-node simulated iPSC-860, %dB blocks\n\n", 1<<d, m)

	kinds := []collectives.Kind{
		collectives.Broadcast, collectives.Scatter,
		collectives.Gather, collectives.AllGather,
	}

	t := report.NewTable("simulated vs modeled time per collective",
		"pattern", "model(µs)", "simulated(µs)", "messages")
	for _, k := range kinds {
		// Simulate runs the one fabric-based implementation on the
		// simulated backend: real blocks move (and are verified) while
		// the discrete-event machine prices the schedule.
		res, err := collectives.Simulate(k, net, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(k.String(), collectives.Model(k, prm, m, d), res.Makespan, res.Messages)
	}
	// The densest pattern for comparison: the auto-tuned complete
	// exchange (paper §3: its time upper-bounds every pattern).
	sys, err := core.NewSystem(d, prm)
	if err != nil {
		log.Fatal(err)
	}
	ce, err := sys.CompleteExchange(m)
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow(fmt.Sprintf("complete exchange %v", ce.Partition),
		ce.PredictedMicros, ce.SimulatedMicros, 1<<d*(1<<d-1))
	fmt.Println(t)

	// The identical implementations on the other backend: pure goroutine
	// data movement, every block verified at every node.
	fmt.Println("running the same implementations on the goroutine runtime fabric...")
	for _, k := range kinds {
		fab, err := fabric.NewRuntime(1 << d)
		if err != nil {
			log.Fatal(err)
		}
		if err := collectives.RunOn(k, fab, m, 3, time.Minute); err != nil {
			log.Fatalf("%s: %v", k, err)
		}
		fmt.Printf("  %-9s ok (every block verified at every node)\n", k)
	}
}
