// FFT2D: the transpose-method two-dimensional FFT of the paper's §3
// (reference [11]) on a 32-node hypercube: FFT local rows, complete-
// exchange transpose, FFT again.
//
//	go run ./examples/fft2d
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"time"

	"repro/internal/apps"
	"repro/internal/model"
)

func main() {
	const (
		n     = 64 // grid side
		procs = 32 // d = 5
	)
	prm := model.IPSC860()

	// A two-tone test signal: the 2-D spectrum must show exactly four
	// nonzero bins (±f for each tone).
	const fx, fy = 3, 7
	g, err := apps.NewGrid2D(n, procs, func(r, c int) complex128 {
		v := math.Cos(2*math.Pi*fx*float64(c)/n) + math.Cos(2*math.Pi*fy*float64(r)/n)
		return complex(v, 0)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d×%d complex on %d nodes (%d rows each)\n", n, n, procs, n/procs)

	start := time.Now()
	if err := apps.FFT2D(g, prm, false, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D FFT done in %v wall clock (2 complete-exchange transposes)\n",
		time.Since(start))

	// Find the dominant spectral bins.
	type peak struct {
		r, c int
		mag  float64
	}
	var peaks []peak
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if mag := cmplx.Abs(g.At(r, c)); mag > 1 {
				peaks = append(peaks, peak{r, c, mag})
			}
		}
	}
	fmt.Printf("spectral peaks (|X|>1): %d found\n", len(peaks))
	for _, p := range peaks {
		fmt.Printf("  bin (%2d,%2d): |X| = %8.1f\n", p.r, p.c, p.mag)
	}
	// Expected: (0,±fx) from the cos in x, (±fy,0) from the cos in y.
	want := map[[2]int]bool{
		{0, fx}: true, {0, n - fx}: true,
		{fy, 0}: true, {n - fy, 0}: true,
	}
	okCount := 0
	for _, p := range peaks {
		if want[[2]int{p.r, p.c}] {
			okCount++
		}
	}
	if okCount == 4 && len(peaks) == 4 {
		fmt.Println("spectrum matches the injected tones — transform verified")
	} else {
		fmt.Println("UNEXPECTED spectrum")
	}

	// Round-trip: inverse transform must restore the signal.
	if err := apps.FFT2D(g, prm, true, time.Minute); err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := math.Cos(2*math.Pi*fx*float64(c)/n) + math.Cos(2*math.Pi*fy*float64(r)/n)
			if e := cmplx.Abs(g.At(r, c) - complex(v, 0)); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("inverse round-trip max error: %.2e\n", maxErr)
}
