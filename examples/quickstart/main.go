// Quickstart: run an auto-tuned multiphase complete exchange on a
// simulated 64-node iPSC-860. Every run executes on the unified fabric:
// real payloads move (and the complete-exchange postcondition is
// verified) while the discrete-event simulator prices the schedule.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -topology torus-4x4x4
//	go run ./examples/quickstart -topology mesh-8x8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/topology"
)

func main() {
	spec := flag.String("topology", "hypercube-6",
		"interconnect shape: hypercube-<d>, torus-<r>x<r>x…, or mesh-<r>x<r>x…")
	flag.Parse()

	// A circuit-switched machine of the chosen shape with the measured
	// iPSC-860 parameters of the paper's §7.4.
	topo, err := topology.ParseSpec(*spec)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystemOn(topo, model.IPSC860())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine: %d-node %s (%d dims), λ=%.1fµs τ=%.3fµs/B δ=%.1fµs/dim ρ=%.2fµs/B\n\n",
		sys.Nodes(), topo.Name(), sys.Dim(), sys.Params().Lambda, sys.Params().Tau,
		sys.Params().Delta, sys.Params().Rho)

	// Across the paper's 0-160B "interesting" range the optimal
	// partition changes: tiny blocks want many phases, large blocks want
	// the single-phase circuit-switched algorithm.
	for _, block := range []int{4, 40, 160, 400} {
		res, err := sys.VerifiedExchange(block, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block %4dB: partition %-9v  time %9.1f µs  (data verified: %v)\n",
			block, res.Partition, res.SimulatedMicros, res.DataVerified)
	}

	// Compare against the two extreme groupings at 40 bytes — on the
	// paper's d=6 hypercube these are the Standard Exchange and Optimal
	// Circuit-Switched algorithms, the headline case where multiphase
	// wins by ~2x.
	fmt.Println()
	k := sys.Dim()
	ones := make([]int, k)
	for i := range ones {
		ones[i] = 1
	}
	for _, alg := range []struct {
		name string
		part []int
	}{
		{fmt.Sprintf("one dimension per phase {1×%d}", k), ones},
		{fmt.Sprintf("single phase {%d}", k), []int{k}},
	} {
		res, err := sys.ExchangeWith(40, alg.part)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block   40B: %-32s time %9.1f µs\n", alg.name, res.SimulatedMicros)
	}
}
