// Quickstart: run an auto-tuned multiphase complete exchange on a
// simulated 64-node iPSC-860. Every run executes on the unified fabric:
// real payloads move (and the complete-exchange postcondition is
// verified) while the discrete-event simulator prices the schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	// A 64-node (dimension 6) circuit-switched hypercube with the
	// measured iPSC-860 parameters of the paper's §7.4.
	sys, err := core.NewSystem(6, model.IPSC860())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine: %d-node hypercube (d=%d), λ=%.1fµs τ=%.3fµs/B δ=%.1fµs/dim ρ=%.2fµs/B\n\n",
		sys.Nodes(), sys.Dim(), sys.Params().Lambda, sys.Params().Tau,
		sys.Params().Delta, sys.Params().Rho)

	// Across the paper's 0-160B "interesting" range the optimal
	// partition changes: tiny blocks want many phases, large blocks want
	// the single-phase circuit-switched algorithm.
	for _, block := range []int{4, 40, 160, 400} {
		res, err := sys.VerifiedExchange(block, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block %4dB: partition %-9v  time %9.1f µs  (data verified: %v)\n",
			block, res.Partition, res.SimulatedMicros, res.DataVerified)
	}

	// Compare against the two classical algorithms at 40 bytes — the
	// paper's headline case where multiphase wins by ~2x.
	fmt.Println()
	for _, alg := range []struct {
		name string
		part []int
	}{
		{"standard exchange {1,1,1,1,1,1}", []int{1, 1, 1, 1, 1, 1}},
		{"optimal circuit-switched {6}", []int{6}},
	} {
		res, err := sys.ExchangeWith(40, alg.part)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block   40B: %-32s time %9.1f µs\n", alg.name, res.SimulatedMicros)
	}
}
